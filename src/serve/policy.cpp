#include "serve/policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace edgemm::serve {

const char* to_string(EnginePhase phase) {
  switch (phase) {
    case EnginePhase::kFull: return "full";
    case EnginePhase::kPrefillOnly: return "prefill-only";
    case EnginePhase::kDecodeOnly: return "decode-only";
  }
  return "?";
}

const char* to_string(AdmissionVerdict verdict) {
  switch (verdict) {
    case AdmissionVerdict::kAdmit: return "admit";
    case AdmissionVerdict::kDefer: return "defer";
    case AdmissionVerdict::kReject: return "reject";
  }
  return "?";
}

std::vector<std::size_t> MonolithicPrefill::plan(const Request& r) const {
  return {r.input_tokens};
}

ChunkedPrefill::ChunkedPrefill(std::size_t max_chunk_tokens)
    : max_chunk_tokens_(max_chunk_tokens) {
  if (max_chunk_tokens_ == 0) {
    throw std::invalid_argument("ChunkedPrefill: max_chunk_tokens must be > 0");
  }
}

std::vector<std::size_t> ChunkedPrefill::plan(const Request& r) const {
  std::vector<std::size_t> chunks;
  std::size_t remaining = r.input_tokens;
  while (remaining > 0) {
    const std::size_t take = std::min(remaining, max_chunk_tokens_);
    chunks.push_back(take);
    remaining -= take;
  }
  return chunks;
}

ResidentChunkedPrefill::ResidentChunkedPrefill(std::size_t max_chunk_tokens,
                                               bool chain_lane_affinity)
    : ChunkedPrefill(max_chunk_tokens),
      chain_lane_affinity_(chain_lane_affinity) {}

void FifoBatch::order_joiners(std::vector<std::size_t>&,
                              const std::vector<RequestRecord>&) const {}

void ShortestRemainingFirst::order_joiners(
    std::vector<std::size_t>& ready,
    const std::vector<RequestRecord>& records) const {
  std::stable_sort(ready.begin(), ready.end(),
                   [&records](std::size_t a, std::size_t b) {
                     const auto remaining = [&records](std::size_t i) {
                       const RequestRecord& rec = records[i];
                       return rec.request.output_tokens - rec.tokens_generated;
                     };
                     return remaining(a) < remaining(b);
                   });
}

// --- Placement policies -----------------------------------------------------

std::size_t PlacementPolicy::acquire_target_layers(
    std::size_t model, const PlacementContext& ctx) const {
  // Whole-set default: policies that never grant partial sets keep the
  // PR 4/5 behavior of pinning as many of the model's groups as fit.
  return ctx.models[model].total_layers;
}

namespace {

/// Idle resident models ordered coldest-first (live demand asc; within
/// equal demand the LARGEST pin goes first — one eviction covers the
/// need and the other idle models stay resident; ties to the lower
/// index), cut off once the freed bytes cover `bytes_needed`.
std::vector<std::size_t> coldest_idle_victims(
    Bytes bytes_needed, const PlacementContext& ctx,
    const std::vector<std::size_t>& excluded) {
  std::vector<std::size_t> idle;
  for (std::size_t m = 0; m < ctx.models.size(); ++m) {
    if (!ctx.models[m].idle_resident) continue;
    if (std::find(excluded.begin(), excluded.end(), m) != excluded.end()) {
      continue;
    }
    idle.push_back(m);
  }
  std::stable_sort(idle.begin(), idle.end(),
                   [&ctx](std::size_t a, std::size_t b) {
                     const std::size_t da = ctx.models[a].live_demand();
                     const std::size_t db = ctx.models[b].live_demand();
                     if (da != db) return da < db;
                     if (ctx.models[a].pinned_bytes !=
                         ctx.models[b].pinned_bytes) {
                       return ctx.models[a].pinned_bytes >
                              ctx.models[b].pinned_bytes;
                     }
                     return a < b;
                   });
  std::vector<std::size_t> victims;
  Bytes freed = 0;
  for (const std::size_t m : idle) {
    if (freed >= bytes_needed) break;
    victims.push_back(m);
    freed += ctx.models[m].pinned_bytes;
  }
  return victims;
}

}  // namespace

bool KeepCurrentPlacement::may_acquire(std::size_t,
                                       const PlacementContext&) const {
  return true;
}

bool KeepCurrentPlacement::retain_idle(std::size_t,
                                       const PlacementContext&) const {
  return false;
}

std::vector<std::size_t> KeepCurrentPlacement::evict_victims(
    std::size_t, Bytes, const PlacementContext&) const {
  return {};
}

DemandWeightedPlacement::DemandWeightedPlacement(
    const DemandWeightedOptions& options)
    : options_(options) {}

double DemandWeightedPlacement::ranked_demand(const ModelDemand& d) const {
  const double live = static_cast<double>(d.live_demand());
  if (!options_.decayed_demand) return live;
  const double decayed =
      d.demand_decayed < kDecayedDemandFloor ? 0.0 : d.demand_decayed;
  return std::max(live, decayed);
}

std::vector<DemandWeightedPlacement::Grant>
DemandWeightedPlacement::target_grants(const PlacementContext& ctx) const {
  // Model indices ordered hottest-first: ranked demand desc, ties to the
  // lower index (pure determinism — residency deliberately does NOT
  // break ties, or a small resident model could squat the budget slot a
  // big equal-demand model needs).
  std::vector<std::size_t> order(ctx.models.size());
  for (std::size_t m = 0; m < order.size(); ++m) order[m] = m;
  std::stable_sort(order.begin(), order.end(),
                   [this, &ctx](std::size_t a, std::size_t b) {
                     const double da = ranked_demand(ctx.models[a]);
                     const double db = ranked_demand(ctx.models[b]);
                     if (da != db) return da > db;
                     return a < b;
                   });
  // Greedy knapsack over hottest-first sets. Zero-demand models only
  // stay in the set while already resident (keeping them warm is free);
  // they are the first to fall out once a demanded model wants the
  // bytes, because the greedy pass sees the demanded model first. With
  // fractional sets a model takes the groups that fit instead of
  // standing aside whole, so the budget never idles while a hot model
  // begs.
  std::vector<Grant> grants;
  Bytes remaining = ctx.capacity;
  for (const std::size_t m : order) {
    const ModelDemand& d = ctx.models[m];
    if (ranked_demand(d) == 0.0 && d.resident_layers == 0) continue;
    const Bytes set = d.full_set_bytes();
    if (set == 0) continue;
    if (options_.fractional_sets) {
      const auto fit = std::min<std::size_t>(
          d.total_layers,
          static_cast<std::size_t>(remaining / d.layer_group_bytes));
      if (fit == 0) continue;
      grants.push_back(Grant{m, fit});
      remaining -= static_cast<Bytes>(fit) * d.layer_group_bytes;
    } else {
      if (set > remaining) continue;
      grants.push_back(Grant{m, d.total_layers});
      remaining -= set;
    }
  }
  return grants;
}

std::vector<std::size_t> DemandWeightedPlacement::target_set(
    const PlacementContext& ctx) const {
  const auto grants = target_grants(ctx);
  std::vector<std::size_t> target;
  target.reserve(grants.size());
  for (const Grant& g : grants) target.push_back(g.model);
  return target;
}

bool DemandWeightedPlacement::may_acquire(std::size_t model,
                                          const PlacementContext& ctx) const {
  const auto target = target_set(ctx);
  return std::find(target.begin(), target.end(), model) != target.end();
}

std::size_t DemandWeightedPlacement::acquire_target_layers(
    std::size_t model, const PlacementContext& ctx) const {
  for (const Grant& g : target_grants(ctx)) {
    if (g.model == model) return g.layers;
  }
  return 0;
}

bool DemandWeightedPlacement::retain_idle(std::size_t model,
                                          const PlacementContext& ctx) const {
  // Same judgment at detach time: a model still in the target set keeps
  // its bytes warm, one that fell out of it is evicted on the spot.
  return may_acquire(model, ctx);
}

std::vector<std::size_t> DemandWeightedPlacement::evict_victims(
    std::size_t model, Bytes bytes_needed, const PlacementContext& ctx) const {
  const auto target = target_set(ctx);
  if (std::find(target.begin(), target.end(), model) == target.end()) {
    return {};
  }
  return coldest_idle_victims(bytes_needed, ctx, target);
}

bool EvictIdleOnPressure::may_acquire(std::size_t,
                                      const PlacementContext&) const {
  return true;
}

bool EvictIdleOnPressure::retain_idle(std::size_t,
                                      const PlacementContext&) const {
  return true;
}

std::vector<std::size_t> EvictIdleOnPressure::evict_victims(
    std::size_t model, Bytes bytes_needed, const PlacementContext& ctx) const {
  // Never evict the asker's own idle pin out from under it — it would
  // ride that pin warm instead of re-pinning.
  return coldest_idle_victims(bytes_needed, ctx, {model});
}

// --- Offload policies -------------------------------------------------------

const char* to_string(OffloadTarget target) {
  switch (target) {
    case OffloadTarget::kLocal: return "local";
    case OffloadTarget::kFat: return "fat";
  }
  return "?";
}

OffloadTarget NoOffload::place_chunk(const Request&,
                                     const OffloadContext&) const {
  return OffloadTarget::kLocal;
}

PrefillToFat::PrefillToFat(std::size_t min_prompt_tokens)
    : min_prompt_tokens_(min_prompt_tokens) {}

OffloadTarget PrefillToFat::place_chunk(const Request& r,
                                        const OffloadContext&) const {
  // Per-request judgment: every chunk of a long prompt goes fat, so the
  // whole prefill (encoder included) runs on one backend and only the
  // finished KV crosses the link.
  return r.input_tokens >= min_prompt_tokens_ ? OffloadTarget::kFat
                                              : OffloadTarget::kLocal;
}

ThresholdOffload::ThresholdOffload(std::size_t local_queue_threshold)
    : local_queue_threshold_(local_queue_threshold) {
  if (local_queue_threshold_ == 0) {
    throw std::invalid_argument(
        "ThresholdOffload: local_queue_threshold must be > 0");
  }
}

OffloadTarget ThresholdOffload::place_chunk(const Request&,
                                            const OffloadContext& ctx) const {
  // Spill only under local pressure, and only while spilling actually
  // shortens the wait (the fat stream is the shorter queue).
  const bool pressured = ctx.local_queued >= local_queue_threshold_;
  const bool fat_shorter = ctx.fat_queued < ctx.local_queued;
  return pressured && fat_shorter ? OffloadTarget::kFat : OffloadTarget::kLocal;
}

double StaticQuality::keep_fraction(const Request&,
                                    const QualityContext& ctx) const {
  return ctx.base_keep;
}

SloPressureQuality::SloPressureQuality(double step, double relax_margin)
    : step_(step), relax_margin_(relax_margin) {
  if (!(step_ > 0.0) || step_ > 1.0) {
    throw std::invalid_argument("SloPressureQuality: step must be in (0, 1]");
  }
  if (relax_margin_ < 0.0) {
    throw std::invalid_argument(
        "SloPressureQuality: relax_margin must be >= 0");
  }
}

double SloPressureQuality::keep_fraction(const Request& r,
                                         const QualityContext& ctx) const {
  if (ctx.deadline == 0) return ctx.current_keep;
  if (ctx.estimated_finish > ctx.deadline) {
    // Already projected late: shed quality, not the request.
    return ctx.current_keep - step_;
  }
  // Relax only once the projection beats the deadline by a margin of the
  // request's own SLO window; the dead band in between holds the current
  // fraction, so a constant load cannot oscillate.
  const Cycle window = ctx.deadline > r.arrival ? ctx.deadline - r.arrival : 0;
  const double slack = static_cast<double>(ctx.deadline) -
                       static_cast<double>(ctx.estimated_finish);
  if (slack >= relax_margin_ * static_cast<double>(window)) {
    return ctx.current_keep + step_;
  }
  return ctx.current_keep;
}

QueueDepthQuality::QueueDepthQuality(std::size_t low_depth,
                                     std::size_t high_depth)
    : low_depth_(low_depth), high_depth_(high_depth) {
  if (low_depth_ >= high_depth_) {
    throw std::invalid_argument(
        "QueueDepthQuality: low_depth must be < high_depth");
  }
}

double QueueDepthQuality::keep_fraction(const Request&,
                                        const QualityContext& ctx) const {
  if (ctx.queue_depth <= low_depth_) return ctx.max_keep;
  if (ctx.queue_depth >= high_depth_) return ctx.min_keep;
  const double t = static_cast<double>(ctx.queue_depth - low_depth_) /
                   static_cast<double>(high_depth_ - low_depth_);
  return ctx.max_keep + t * (ctx.min_keep - ctx.max_keep);
}

}  // namespace edgemm::serve
