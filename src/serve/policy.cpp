#include "serve/policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace edgemm::serve {

const char* to_string(AdmissionVerdict verdict) {
  switch (verdict) {
    case AdmissionVerdict::kAdmit: return "admit";
    case AdmissionVerdict::kDefer: return "defer";
    case AdmissionVerdict::kReject: return "reject";
  }
  return "?";
}

std::vector<std::size_t> MonolithicPrefill::plan(const Request& r) const {
  return {r.input_tokens};
}

ChunkedPrefill::ChunkedPrefill(std::size_t max_chunk_tokens)
    : max_chunk_tokens_(max_chunk_tokens) {
  if (max_chunk_tokens_ == 0) {
    throw std::invalid_argument("ChunkedPrefill: max_chunk_tokens must be > 0");
  }
}

std::vector<std::size_t> ChunkedPrefill::plan(const Request& r) const {
  std::vector<std::size_t> chunks;
  std::size_t remaining = r.input_tokens;
  while (remaining > 0) {
    const std::size_t take = std::min(remaining, max_chunk_tokens_);
    chunks.push_back(take);
    remaining -= take;
  }
  return chunks;
}

ResidentChunkedPrefill::ResidentChunkedPrefill(std::size_t max_chunk_tokens,
                                               bool chain_lane_affinity)
    : ChunkedPrefill(max_chunk_tokens),
      chain_lane_affinity_(chain_lane_affinity) {}

void FifoBatch::order_joiners(std::vector<std::size_t>&,
                              const std::vector<RequestRecord>&) const {}

void ShortestRemainingFirst::order_joiners(
    std::vector<std::size_t>& ready,
    const std::vector<RequestRecord>& records) const {
  std::stable_sort(ready.begin(), ready.end(),
                   [&records](std::size_t a, std::size_t b) {
                     const auto remaining = [&records](std::size_t i) {
                       const RequestRecord& rec = records[i];
                       return rec.request.output_tokens - rec.tokens_generated;
                     };
                     return remaining(a) < remaining(b);
                   });
}

}  // namespace edgemm::serve
