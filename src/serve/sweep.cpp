#include "serve/sweep.hpp"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace edgemm::serve {

namespace {

/// Bounded MPMC ring buffer of case indices (mt_circular_queue shape:
/// mutex + two condvars + head/tail over a fixed store). The sweep
/// pushes every index up front and closes the queue; workers pop until
/// empty-and-closed.
class IndexQueue {
 public:
  explicit IndexQueue(std::size_t capacity)
      : store_(capacity > 0 ? capacity : 1) {}

  void push(std::size_t value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return size_ < store_.size(); });
    store_[(head_ + size_) % store_.size()] = value;
    ++size_;
    not_empty_.notify_one();
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
  }

  /// False once the queue is drained and closed.
  bool pop(std::size_t& value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return size_ > 0 || closed_; });
    if (size_ == 0) return false;
    value = store_[head_];
    head_ = (head_ + 1) % store_.size();
    --size_;
    not_full_.notify_one();
    return true;
  }

 private:
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<std::size_t> store_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

/// Replays cases[index] into outcomes[index] / errors[index]. Outcome
/// slots are fixed by case index, so thread scheduling cannot reorder or
/// perturb the results.
void run_case(const std::vector<SweepCase>& cases, std::size_t index,
              std::vector<SweepOutcome>& outcomes,
              std::vector<std::exception_ptr>& errors) {
  const auto start = std::chrono::steady_clock::now();
  try {
    const SweepCase& c = cases[index];
    ReplayOutcome replay = replay_trace(c.chip, c.models, c.engine, c.requests);
    outcomes[index].label = c.label;
    outcomes[index].result = replay.result;
    outcomes[index].records = std::move(replay.records);
  } catch (...) {
    errors[index] = std::current_exception();
  }
  outcomes[index].wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
}

}  // namespace

std::vector<SweepOutcome> run_sweep(const std::vector<SweepCase>& cases,
                                    const SweepOptions& options) {
  if (cases.empty()) {
    throw std::invalid_argument("run_sweep: empty case list");
  }
  std::vector<SweepOutcome> outcomes(cases.size());
  std::vector<std::exception_ptr> errors(cases.size());

  if (options.workers <= 1) {
    for (std::size_t i = 0; i < cases.size(); ++i) {
      run_case(cases, i, outcomes, errors);
    }
  } else {
    IndexQueue queue(cases.size());
    std::vector<std::thread> pool;
    pool.reserve(options.workers);
    for (std::size_t w = 0; w < options.workers; ++w) {
      pool.emplace_back([&] {
        std::size_t index = 0;
        while (queue.pop(index)) run_case(cases, index, outcomes, errors);
      });
    }
    for (std::size_t i = 0; i < cases.size(); ++i) queue.push(i);
    queue.close();
    for (std::thread& t : pool) t.join();
  }

  // Deterministic error surface too: always the lowest failing index.
  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return outcomes;
}

bool results_identical(const ServingResult& a, const ServingResult& b) {
  return a.completed == b.completed && a.rejected == b.rejected &&
         a.makespan == b.makespan && a.makespan_ms == b.makespan_ms &&
         a.p50_latency_ms == b.p50_latency_ms &&
         a.p95_latency_ms == b.p95_latency_ms &&
         a.p99_latency_ms == b.p99_latency_ms &&
         a.mean_latency_ms == b.mean_latency_ms &&
         a.tokens_per_second == b.tokens_per_second &&
         a.dram_utilization == b.dram_utilization &&
         a.mean_decode_batch == b.mean_decode_batch &&
         a.decode_steps == b.decode_steps &&
         a.peak_queue_depth == b.peak_queue_depth &&
         a.rebalances == b.rebalances && a.with_deadline == b.with_deadline &&
         a.slo_attained == b.slo_attained &&
         a.slo_attainment == b.slo_attainment &&
         a.prefill_jobs == b.prefill_jobs &&
         a.max_cc_queue_delay_ms == b.max_cc_queue_delay_ms &&
         a.kv_deferrals == b.kv_deferrals &&
         a.cc_weight_fetch_bytes == b.cc_weight_fetch_bytes &&
         a.cc_weight_bytes_saved == b.cc_weight_bytes_saved &&
         a.weight_pins == b.weight_pins &&
         a.weight_pin_fallbacks == b.weight_pin_fallbacks &&
         a.weight_shared_attaches == b.weight_shared_attaches &&
         a.peak_pinned_bytes == b.peak_pinned_bytes &&
         a.weight_warm_attaches == b.weight_warm_attaches &&
         a.placement_evictions == b.placement_evictions &&
         a.placement_denials == b.placement_denials &&
         a.rider_refetch_bytes == b.rider_refetch_bytes &&
         a.kv_pages_allocated == b.kv_pages_allocated &&
         a.kv_pages_freed == b.kv_pages_freed &&
         a.kv_shared_attaches == b.kv_shared_attaches &&
         a.kv_shared_pages_saved == b.kv_shared_pages_saved &&
         a.kv_cow_forks == b.kv_cow_forks &&
         a.kv_pages_swapped_out == b.kv_pages_swapped_out &&
         a.kv_pages_swapped_in == b.kv_pages_swapped_in &&
         a.kv_swap_refetch_bytes == b.kv_swap_refetch_bytes &&
         a.kv_swap_preemptions == b.kv_swap_preemptions &&
         a.peak_kv_reserved_bytes == b.peak_kv_reserved_bytes &&
         a.peak_decode_batch == b.peak_decode_batch &&
         a.offloaded_requests == b.offloaded_requests &&
         a.offloaded_chunks == b.offloaded_chunks &&
         a.fat_bytes_moved == b.fat_bytes_moved &&
         a.fat_kernel_launches == b.fat_kernel_launches &&
         a.fat_busy_fraction == b.fat_busy_fraction &&
         a.kv_return_transfers == b.kv_return_transfers &&
         a.kv_return_bytes_sent == b.kv_return_bytes_sent &&
         a.kv_return_bytes_landed == b.kv_return_bytes_landed &&
         a.kv_return_bytes_in_flight == b.kv_return_bytes_in_flight &&
         a.kv_return_max_queue_ms == b.kv_return_max_queue_ms &&
         a.kv_swap_dma_bytes == b.kv_swap_dma_bytes &&
         a.quality_downgrades == b.quality_downgrades &&
         a.quality_restores == b.quality_restores &&
         a.tokens_at_degraded_quality == b.tokens_at_degraded_quality &&
         a.accuracy_proxy_mean == b.accuracy_proxy_mean &&
         a.accuracy_proxy_min == b.accuracy_proxy_min;
}

bool record_identical(const RequestRecord& a, const RequestRecord& b) {
  return a.request.id == b.request.id && a.request.arrival == b.request.arrival &&
         a.request.model == b.request.model &&
         a.request.input_tokens == b.request.input_tokens &&
         a.request.output_tokens == b.request.output_tokens &&
         a.request.crops == b.request.crops &&
         a.request.prefix_id == b.request.prefix_id &&
         a.request.prefix_tokens == b.request.prefix_tokens &&
         a.request.deadline == b.request.deadline &&
         a.admitted == b.admitted && a.prefill_start == b.prefill_start &&
         a.prefill_end == b.prefill_end && a.first_token == b.first_token &&
         a.finish == b.finish && a.tokens_generated == b.tokens_generated &&
         a.prefill_chunks == b.prefill_chunks &&
         a.offloaded_chunks == b.offloaded_chunks &&
         a.weight_pinned_layers == b.weight_pinned_layers &&
         a.prune_keep_fraction == b.prune_keep_fraction &&
         a.keep_fraction_served == b.keep_fraction_served &&
         a.done == b.done && a.rejected == b.rejected;
}

bool outcomes_identical(const SweepOutcome& a, const SweepOutcome& b) {
  if (a.label != b.label || !results_identical(a.result, b.result) ||
      a.records.size() != b.records.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (!record_identical(a.records[i], b.records[i])) return false;
  }
  return true;
}

}  // namespace edgemm::serve
