// Page-granular KV-cache allocation with copy-on-write prefix sharing
// and an evict-to-DRAM swap tier.
//
// PR 2's KvCapacityTracker reserves each request's FULL final footprint
// when it joins the decode batch, so most of the CIM budget is dead
// reservation for tokens not generated yet. The KvPageAllocator replaces
// that with fixed-size pages over the same byte budget (backed by the
// same ByteLedger):
//   - a request joining the decode batch reserves only the pages its
//     PROMPT occupies; the reservation then grows one page at a time as
//     generated tokens cross page boundaries (the engine's per-token
//     growth pass);
//   - requests with a common system/image prompt (Request::prefix_id)
//     share the prefix's FULL pages under one refcounted run — the first
//     attacher allocates and charges them once, later attachers ride for
//     free. The boundary page (a partial page where the shared prefix
//     ends and private tokens begin) is copy-on-write: each request
//     copies it into its private page table at join, because its first
//     divergent token writes into that page. Shared pages are freed
//     exactly once, when the last holder releases;
//   - when the CIM budget fills mid-decode, the engine preempts victim
//     requests chosen by a SwapPolicy (least-recent page-table touch by
//     default): ALL of a victim's private resident pages move to DRAM
//     (swap-out releases their CIM bytes), and the re-fetch bytes are
//     charged onto the ledger when the victim is refilled — preempt-and-
//     refill instead of defer-at-join. A shared run whose last resident
//     holder leaves swaps out with it.
//
// Conservation is the contract, asserted after every mutation:
//     pages_allocated() == resident_pages() + swapped_pages() + pages_freed()
// and the backing ByteLedger holds exactly resident_pages() x page_bytes
// at every probe cycle. (In the simulated chip KV streams from DRAM
// through the CIM macros each step regardless — see chip_kv_capacity —
// so swap costs are ledgered as re-fetch BYTES, not extra step latency:
// the budget governs which requests may decode, the ledger prices the
// traffic honestly.)
#ifndef EDGEMM_SERVE_KV_PAGES_HPP
#define EDGEMM_SERVE_KV_PAGES_HPP

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "common/units.hpp"
#include "model/mllm_config.hpp"
#include "serve/byte_ledger.hpp"
#include "serve/request.hpp"

namespace edgemm::serve {

/// Identifies one shared-prefix run: (model, prefix_id) pairs map to a
/// non-zero key; 0 means "no shared prefix".
using KvPrefixKey = std::uint64_t;

/// Default KV page size (EngineConfig::kv_page_bytes).
inline constexpr Bytes kDefaultKvPageBytes = 64 * 1024;

/// Key of the shared-prefix run requests of `model` with this
/// `prefix_id` attach to; 0 (no sharing) when prefix_id is 0.
KvPrefixKey kv_prefix_key(std::size_t model, std::size_t prefix_id);

/// Tokens one `page_bytes` page holds for `model` (>= 1: a page smaller
/// than one token's K+V still advances one token per page).
std::size_t kv_tokens_per_page(const model::MllmConfig& model,
                               Bytes page_bytes);

/// FULL pages of `r`'s shared prefix — the pages a request shares with
/// its (model, prefix_id) group. The partial boundary page is NOT
/// shared (it is copy-on-write forked into the private table). 0 when
/// the request carries no prefix.
std::size_t kv_shared_prefix_pages(const Request& r,
                                   const model::MllmConfig& model,
                                   Bytes page_bytes);

/// Page-granular KV footprint `r` reaches by its last generated token:
/// shared prefix pages (counted once per group, but each request must
/// fit them alone) plus its private pages — the paged analogue of
/// kv_footprint_bytes, and the bound the per-token growth pass never
/// exceeds. `prefix_sharing` off folds the prefix into the private
/// pages.
std::size_t kv_page_footprint(const Request& r,
                              const model::MllmConfig& model,
                              Bytes page_bytes, bool prefix_sharing);

/// One swap-victim candidate the engine offers the SwapPolicy: an
/// ACTIVE decode request (never the one asking for a page) with private
/// resident pages that could move to DRAM.
struct SwapCandidate {
  RequestId id = 0;
  std::size_t resident_pages = 0;  ///< private pages swap-out would free
  /// Last cycle the request's page table was touched (join, page append
  /// or refill) — the recency signal the LRU default ranks by.
  Cycle last_touch = 0;
  std::size_t context_tokens = 0;    ///< prompt + generated so far
  std::size_t remaining_tokens = 0;  ///< output tokens still to generate
};

/// Victim-selection seam for the evict-to-DRAM swap tier
/// (EngineConfig::kv_swap_policy). The engine preempts candidates
/// front-to-back from victim_order until the page it needs is free;
/// deterministic orderings keep replays byte-identical.
class SwapPolicy {
 public:
  virtual ~SwapPolicy() = default;
  virtual const char* name() const = 0;
  /// Ranks `candidates` most-evictable first. Must return a permutation
  /// of the candidate ids; ties must be broken deterministically.
  virtual std::vector<RequestId> victim_order(
      const std::vector<SwapCandidate>& candidates) const = 0;
};

/// Default SwapPolicy: least-recent page-table touch first (every active
/// request streams its whole KV each step, so "recently USED" cannot
/// discriminate — recency of page-table GROWTH is the cold signal),
/// ties by ascending request id.
class LruSwapPolicy : public SwapPolicy {
 public:
  const char* name() const override { return "lru"; }
  std::vector<RequestId> victim_order(
      const std::vector<SwapCandidate>& candidates) const override;
};

/// Fixed-size page allocator over a KV byte budget, backed by a
/// ByteLedger (one ledger hold per resident physical page). Tracks per-
/// request private page tables, refcounted shared-prefix runs and the
/// DRAM swap tier; asserts the conservation invariant after every
/// mutation (see the header comment).
class KvPageAllocator {
 public:
  /// Throws std::invalid_argument for a zero page size or a capacity
  /// smaller than one page.
  KvPageAllocator(Bytes capacity, Bytes page_bytes);

  Bytes page_bytes() const { return page_bytes_; }
  std::size_t total_pages() const { return total_pages_; }
  std::size_t free_pages() const { return total_pages_ - resident_count_; }
  /// Pages currently holding CIM budget (private + shared runs).
  std::size_t resident_pages() const { return resident_count_; }
  /// Pages currently evicted to DRAM (private + fully-swapped runs).
  std::size_t swapped_pages() const { return swapped_count_; }
  Bytes resident_bytes() const { return resident_count_ * page_bytes_; }
  Bytes peak_resident_bytes() const { return peak_resident_bytes_; }
  std::size_t holders() const { return tables_.size(); }
  bool holds(RequestId id) const { return tables_.count(id) > 0; }
  std::size_t resident_pages_of(RequestId id) const;
  std::size_t swapped_pages_of(RequestId id) const;
  /// Requests attached to `key`'s shared run (0 = no such run).
  std::size_t shared_refcount(KvPrefixKey key) const;

  // --- Cumulative counters (the conservation ledger) ---------------------
  std::size_t pages_allocated() const { return pages_allocated_; }
  std::size_t pages_freed() const { return pages_freed_; }
  std::size_t shared_attaches() const { return shared_attaches_; }
  /// Pages riders did NOT allocate because the run already held them —
  /// the bytes prefix sharing saved, in pages.
  std::size_t shared_pages_saved() const { return shared_pages_saved_; }
  std::size_t pages_swapped_out() const { return pages_swapped_out_; }
  std::size_t pages_swapped_in() const { return pages_swapped_in_; }
  /// Requests preempted to DRAM (swap_out calls).
  std::size_t preemptions() const { return preemptions_; }
  /// DRAM re-fetch bytes charged at swap-in (pages x page_bytes).
  Bytes swap_refetch_bytes() const { return swap_refetch_bytes_; }
  /// Failed try_join calls (each one is a deferred decode join).
  std::size_t deferrals() const { return deferrals_; }

  /// The conservation invariant, checkable at ANY probe cycle:
  /// allocated == resident + swapped + freed, and the backing ledger
  /// holds exactly the resident pages' bytes.
  bool conserved() const;

  /// Joins `id` with `private_pages` pages, first attaching the shared
  /// run `prefix` of `shared_pages` full pages when prefix != 0 (a fresh
  /// attach allocates and charges the run once; a rider refcounts it —
  /// and refills it from DRAM, charging re-fetch, if the run swapped
  /// out). All-or-nothing: on failure nothing is held and one deferral
  /// is counted. Every request of a group must declare the same
  /// shared_pages (asserted). Throws std::logic_error when `id`
  /// already holds a page table.
  bool try_join(RequestId id, std::size_t private_pages,
                KvPrefixKey prefix = 0, std::size_t shared_pages = 0);

  /// One more private page for `id` (a generated token crossed a page
  /// boundary). False when no page is free — the engine then preempts a
  /// SwapPolicy victim and retries. Not counted as a deferral.
  bool try_append(RequestId id);

  /// Preempts `id` to DRAM: ALL its private resident pages release
  /// their CIM bytes and become swapped. When `id` was its shared run's
  /// last RESIDENT holder, the run swaps out with it (its pages serve
  /// no resident request). Returns the private pages moved. Throws
  /// std::logic_error when `id` holds nothing or is already swapped.
  std::size_t swap_out(RequestId id);

  /// Refills `id` from DRAM: re-acquires its swapped private pages (and
  /// its shared run's, if the run swapped out), charging the re-fetch
  /// bytes. False when the pages do not fit yet.
  bool try_swap_in(RequestId id);

  /// Releases `id`'s page table — resident or swapped — freeing every
  /// private page exactly once, and the shared run's pages exactly once
  /// when `id` was the last holder. A still-referenced run whose last
  /// RESIDENT holder leaves swaps out (its pages must not squat on the
  /// CIM budget with every holder in DRAM). Throws std::logic_error if
  /// `id` holds nothing.
  void release(RequestId id);

 private:
  /// One refcounted shared-prefix run (the CoW-shared FULL pages).
  struct SharedRun {
    std::size_t refs = 0;           ///< holders, resident or swapped
    std::size_t resident_refs = 0;  ///< holders whose table is resident
    bool swapped = false;           ///< run pages evicted to DRAM
    std::size_t pages = 0;          ///< run length (fixed at creation)
    std::vector<std::uint64_t> page_ids;  ///< ledger holds while resident
  };
  /// One request's private page table.
  struct PageTable {
    std::vector<std::uint64_t> resident;  ///< ledger page ids
    std::size_t swapped = 0;              ///< private pages in DRAM
    KvPrefixKey prefix = 0;               ///< 0 = no shared run
    bool out = false;                     ///< request preempted to DRAM
  };

  /// Acquires one physical page from the ledger (caller checked
  /// free_pages(); asserted here).
  std::uint64_t acquire_page();
  void release_page(std::uint64_t page_id);
  void swap_run_out(SharedRun& run);
  void assert_conserved() const;

  Bytes page_bytes_;
  std::size_t total_pages_;
  ByteLedger ledger_;
  std::unordered_map<RequestId, PageTable> tables_;
  std::unordered_map<KvPrefixKey, SharedRun> runs_;
  std::uint64_t next_page_ = 0;   ///< physical page ids are never reused
  std::size_t resident_count_ = 0;
  std::size_t swapped_count_ = 0;
  Bytes peak_resident_bytes_ = 0;
  std::size_t pages_allocated_ = 0;
  std::size_t pages_freed_ = 0;
  std::size_t shared_attaches_ = 0;
  std::size_t shared_pages_saved_ = 0;
  std::size_t pages_swapped_out_ = 0;
  std::size_t pages_swapped_in_ = 0;
  std::size_t preemptions_ = 0;
  Bytes swap_refetch_bytes_ = 0;
  std::size_t deferrals_ = 0;
};

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_KV_PAGES_HPP
