#include "serve/kv_tracker.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "model/workload.hpp"

namespace edgemm::serve {

Bytes kv_footprint_bytes(const Request& r, const model::MllmConfig& model) {
  return static_cast<Bytes>(r.input_tokens + r.output_tokens) *
         model::kv_bytes_per_token(model);
}

Bytes chip_kv_capacity(const core::ChipConfig& config, double oversubscription) {
  if (!(oversubscription > 0.0)) {
    throw std::invalid_argument("chip_kv_capacity: oversubscription must be > 0");
  }
  const double base = static_cast<double>(config.total_mc_clusters()) *
                      static_cast<double>(config.mc_cluster_cim_bytes());
  return static_cast<Bytes>(std::llround(base * oversubscription));
}

KvCapacityTracker::KvCapacityTracker(Bytes capacity)
    : ledger_(capacity, "KvCapacityTracker") {}

bool KvCapacityTracker::try_reserve(RequestId id, Bytes bytes) {
  if (!ledger_.try_acquire(id, bytes)) {
    ++deferrals_;
    return false;
  }
  peak_reserved_ = std::max(peak_reserved_, ledger_.held());
  return true;
}

void KvCapacityTracker::release(RequestId id) { ledger_.release(id); }

}  // namespace edgemm::serve
