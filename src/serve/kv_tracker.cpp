#include "serve/kv_tracker.hpp"

#include <cmath>
#include <stdexcept>

#include "model/workload.hpp"

namespace edgemm::serve {

Bytes kv_footprint_bytes(const Request& r, const model::MllmConfig& model) {
  return static_cast<Bytes>(r.input_tokens + r.output_tokens) *
         model::kv_bytes_per_token(model);
}

Bytes chip_kv_capacity(const core::ChipConfig& config, double oversubscription) {
  if (!(oversubscription > 0.0)) {
    throw std::invalid_argument("chip_kv_capacity: oversubscription must be > 0");
  }
  const double base = static_cast<double>(config.total_mc_clusters()) *
                      static_cast<double>(config.mc_cluster_cim_bytes());
  return static_cast<Bytes>(std::llround(base * oversubscription));
}

KvCapacityTracker::KvCapacityTracker(Bytes capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("KvCapacityTracker: capacity must be > 0");
  }
}

bool KvCapacityTracker::try_reserve(RequestId id, Bytes bytes) {
  if (held_.contains(id)) {
    throw std::logic_error("KvCapacityTracker: duplicate reservation");
  }
  if (bytes > available()) {
    ++deferrals_;
    return false;
  }
  held_.emplace(id, bytes);
  reserved_ += bytes;
  return true;
}

void KvCapacityTracker::release(RequestId id) {
  const auto it = held_.find(id);
  if (it == held_.end()) {
    throw std::logic_error("KvCapacityTracker: releasing unknown reservation");
  }
  reserved_ -= it->second;
  held_.erase(it);
}

}  // namespace edgemm::serve
