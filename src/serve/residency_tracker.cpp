#include "serve/residency_tracker.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "model/workload.hpp"

namespace edgemm::serve {

Bytes chip_weight_residency_capacity(const core::ChipConfig& config,
                                     double oversubscription) {
  if (!(oversubscription > 0.0)) {
    throw std::invalid_argument(
        "chip_weight_residency_capacity: oversubscription must be > 0");
  }
  const double base = static_cast<double>(config.total_cc_clusters()) *
                      static_cast<double>(config.cc_cluster_tcdm_bytes);
  return static_cast<Bytes>(std::llround(base * oversubscription));
}

Bytes llm_layer_group_bytes(const model::MllmConfig& model,
                            const core::ChipConfig& config) {
  return static_cast<Bytes>(model::llm_layer_weight_elems(model)) *
         config.cc_elem_bytes;
}

WeightResidencyTracker::WeightResidencyTracker(Bytes capacity)
    : ledger_(capacity, "WeightResidencyTracker") {}

WeightResidencyTracker::AttachResult WeightResidencyTracker::attach_layers(
    PinKey key, Bytes bytes_per_layer, std::size_t max_layers) {
  if (bytes_per_layer == 0 || max_layers == 0) {
    throw std::invalid_argument(
        "WeightResidencyTracker: layer group size and count must be > 0");
  }
  const auto it = pins_by_key_.find(key);
  if (it != pins_by_key_.end()) {
    // The weights are already on chip under this key: ride them. The
    // budget is charged once per pin, not once per attached request. A
    // zero refcount means the pin was kept warm by a keep_resident
    // detach — reviving it is the keep-warm win (no fill fetch at all).
    const bool warm = it->second.refs == 0;
    ++it->second.refs;
    if (warm) {
      ++warm_attaches_;
    } else {
      ++shared_attaches_;
    }
    return {it->second.layers, /*shared=*/true, warm};
  }
  const std::size_t fit = try_pin_layers(key, bytes_per_layer, max_layers);
  if (fit == 0) return {0, false, false};  // fallback counted by try_pin_layers
  pins_by_key_.emplace(key, Pin{fit, 1, /*filled=*/false});
  return {fit, /*shared=*/false, /*warm=*/false};
}

void WeightResidencyTracker::detach(PinKey key, bool keep_resident) {
  const auto it = pins_by_key_.find(key);
  if (it == pins_by_key_.end() || it->second.refs == 0) {
    throw std::logic_error(
        "WeightResidencyTracker: detach from a key holding no attached pin");
  }
  if (--it->second.refs == 0 && !keep_resident) {
    ledger_.release(key);
    pins_by_key_.erase(it);
  }
}

void WeightResidencyTracker::mark_filled(PinKey key) {
  const auto it = pins_by_key_.find(key);
  if (it == pins_by_key_.end()) {
    throw std::logic_error("WeightResidencyTracker: mark_filled without a pin");
  }
  it->second.filled = true;
  it->second.landed = it->second.layers;
}

void WeightResidencyTracker::mark_landed(PinKey key, std::size_t up_to) {
  const auto it = pins_by_key_.find(key);
  if (it == pins_by_key_.end()) {
    throw std::logic_error("WeightResidencyTracker: mark_landed without a pin");
  }
  Pin& pin = it->second;
  pin.landed = std::max(pin.landed, std::min(up_to, pin.layers));
  if (pin.landed == pin.layers) pin.filled = true;
}

std::size_t WeightResidencyTracker::landed_layers(PinKey key) const {
  const auto it = pins_by_key_.find(key);
  return it == pins_by_key_.end() ? 0 : it->second.landed;
}

bool WeightResidencyTracker::filled(PinKey key) const {
  const auto it = pins_by_key_.find(key);
  return it != pins_by_key_.end() && it->second.filled;
}

void WeightResidencyTracker::evict_idle(PinKey key) {
  const auto it = pins_by_key_.find(key);
  if (it == pins_by_key_.end()) {
    throw std::logic_error("WeightResidencyTracker: evicting a missing pin");
  }
  if (it->second.refs > 0) {
    throw std::logic_error(
        "WeightResidencyTracker: evicting a pin with live holders");
  }
  ledger_.release(key);
  pins_by_key_.erase(it);
  ++idle_evictions_;
}

std::size_t WeightResidencyTracker::evict_all_idle() {
  std::size_t evicted = 0;
  for (auto it = pins_by_key_.begin(); it != pins_by_key_.end();) {
    if (it->second.refs == 0) {
      ledger_.release(it->first);
      it = pins_by_key_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

std::size_t WeightResidencyTracker::idle_pins() const {
  std::size_t idle = 0;
  for (const auto& [key, pin] : pins_by_key_) {
    if (pin.refs == 0) ++idle;
  }
  return idle;
}

Bytes WeightResidencyTracker::idle_pinned_bytes() const {
  Bytes bytes = 0;
  for (const auto& [key, pin] : pins_by_key_) {
    if (pin.refs == 0) bytes += ledger_.held_by(key);
  }
  return bytes;
}

std::size_t WeightResidencyTracker::refcount(PinKey key) const {
  const auto it = pins_by_key_.find(key);
  return it == pins_by_key_.end() ? 0 : it->second.refs;
}

std::size_t WeightResidencyTracker::resident_layers(PinKey key) const {
  const auto it = pins_by_key_.find(key);
  return it == pins_by_key_.end() ? 0 : it->second.layers;
}

bool WeightResidencyTracker::try_pin(RequestId id, Bytes bytes) {
  if (!ledger_.try_acquire(id, bytes)) {
    ++fallbacks_;
    return false;
  }
  peak_pinned_ = std::max(peak_pinned_, ledger_.held());
  ++pins_;
  return true;
}

std::size_t WeightResidencyTracker::try_pin_layers(RequestId id,
                                                   Bytes bytes_per_layer,
                                                   std::size_t max_layers) {
  if (bytes_per_layer == 0 || max_layers == 0) {
    throw std::invalid_argument(
        "WeightResidencyTracker: layer group size and count must be > 0");
  }
  const std::size_t fit =
      std::min<std::size_t>(max_layers, available() / bytes_per_layer);
  if (fit == 0) {
    ++fallbacks_;
    return 0;
  }
  // Cannot fail: `fit` layer groups fit the available budget by
  // construction (and the duplicate-pin check throws, not returns).
  try_pin(id, static_cast<Bytes>(fit) * bytes_per_layer);
  return fit;
}

void WeightResidencyTracker::release(RequestId id) { ledger_.release(id); }

}  // namespace edgemm::serve
