// Request-level serving engine with continuous batching (the serving
// generalization of the Fig. 9 streaming pipeline).
//
// Requests arrive over simulated time, wait in an arrival-ordered queue,
// and are admitted by an AdmissionPolicy. Admitted requests prefill on
// the CC lane while the MC lane drains decode steps of the in-flight
// batch; a request that finishes prefill joins the decode batch at the
// next step boundary — it does not wait for the batch to drain (continuous
// batching). The §IV-B BandwidthManager rebalances the CC:MC DMA budget
// split every throttle interval from the bytes actually pending on each
// side, and per-request completion callbacks record tail latency.
#ifndef EDGEMM_SERVE_SERVING_ENGINE_HPP
#define EDGEMM_SERVE_SERVING_ENGINE_HPP

#include <cstddef>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/bandwidth_manager.hpp"
#include "core/chip.hpp"
#include "core/config.hpp"
#include "core/phase_scheduler.hpp"
#include "model/mllm_config.hpp"
#include "serve/admission.hpp"
#include "serve/request.hpp"
#include "serve/request_queue.hpp"

namespace edgemm::serve {

/// Engine knobs for one trace replay.
struct ServingOptions {
  AdmissionLimits admission{};
  /// Adaptive CC:MC budget rebalancing; false = static equal sharing
  /// (the §IV-B baseline, PMC throttles still armed).
  bool manage_bandwidth = true;
  core::BandwidthPolicy policy{};
  /// Fraction of prunable FFN rows kept during decode (§IV-A); 1 = off.
  double prune_keep_fraction = 1.0;
  /// Cycles between bandwidth rebalances; 0 = the DMA throttle interval.
  Cycle rebalance_interval = 0;
};

/// Aggregate outcome of one trace replay.
struct ServingResult {
  std::size_t completed = 0;
  Cycle makespan = 0;  ///< first arrival to last token retired
  double makespan_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double mean_latency_ms = 0.0;
  double tokens_per_second = 0.0;
  double dram_utilization = 0.0;
  double mean_decode_batch = 0.0;  ///< average in-flight requests per step
  std::size_t decode_steps = 0;
  std::size_t peak_queue_depth = 0;
  std::size_t rebalances = 0;
};

/// Drives the heterogeneous chip through a request trace. One-shot: each
/// engine instance owns a fresh chip and replays exactly one trace.
class ServingEngine {
 public:
  using CompletionCallback = std::function<void(const RequestRecord&)>;

  /// Throws std::invalid_argument for an empty model list.
  ServingEngine(const core::ChipConfig& config,
                std::vector<model::MllmConfig> models, ServingOptions options);

  /// Fires inside the simulation whenever a request retires.
  void set_completion_callback(CompletionCallback callback);

  /// Replays `requests` to completion and returns aggregate metrics.
  /// Throws std::invalid_argument for an empty trace, duplicate ids,
  /// zero token counts, or an out-of-range model index; std::logic_error
  /// on a second call.
  ServingResult run(std::vector<Request> requests);

  /// Per-request lifecycle records, in the order requests were passed.
  const std::vector<RequestRecord>& records() const { return records_; }

  const core::ChipTimingModel& chip() const { return chip_; }

 private:
  void on_arrival(std::size_t index);
  void pump_admission();
  void on_prefill_done(std::size_t index);
  void start_decode_step();
  void on_decode_step_done();
  void schedule_rebalance(Cycle interval);
  void rebalance();
  Bytes cc_job_bytes(const std::vector<core::GemmWork>& ops) const;

  core::ChipConfig config_;
  std::vector<model::MllmConfig> models_;
  ServingOptions options_;
  AdmissionPolicy admission_;
  core::ChipTimingModel chip_;
  core::PhaseScheduler scheduler_;
  core::BandwidthManager manager_;

  RequestQueue queue_;
  std::vector<RequestRecord> records_;
  std::vector<Bytes> prefill_bytes_;         ///< per record, for rebalancing
  std::unordered_map<RequestId, std::size_t> index_;
  std::deque<std::size_t> decode_ready_;     ///< prefilled, awaiting a slot
  std::vector<std::size_t> active_;          ///< current decode batch
  /// Per-token decode traffic model per served MllmConfig, probed at
  /// construction. One decode step of a batch with contexts c_i costs
  /// shared + sum_i (request + kv_slope * c_i): `shared` is the weight
  /// fetch amortized across the whole batch (Fig. 9(c)), the other two
  /// terms are per-request (activations + private KV stream).
  std::vector<double> decode_shared_bytes_;
  std::vector<double> decode_request_bytes_;
  std::vector<double> decode_kv_slope_;

  CompletionCallback on_complete_;
  bool ran_ = false;
  std::size_t total_ = 0;
  std::size_t completed_ = 0;
  std::size_t inflight_ = 0;
  double cc_pending_bytes_ = 0.0;
  std::size_t decode_steps_ = 0;
  std::size_t batch_occupancy_sum_ = 0;
  std::size_t peak_queue_depth_ = 0;
  std::size_t rebalances_ = 0;
};

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_SERVING_ENGINE_HPP
