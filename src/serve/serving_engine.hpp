// Policy-driven request-level serving engine with continuous batching
// (the serving generalization of the Fig. 9 streaming pipeline).
//
// Requests arrive over simulated time and wait in an arrival-ordered
// queue. The engine itself only orchestrates; the decisions are made by
// the EngineConfig's policies:
//   - a SchedulerPolicy judges the queue head (admit / defer / reject,
//     e.g. SLO-aware rejection of requests that cannot meet their
//     deadline given the estimated backlog);
//   - a PrefillPlanner cuts each admitted request's encoder + prefill
//     into one or more CC-lane jobs (chunked prefill bounds CC-lane
//     head-of-line blocking);
//   - a BatchPolicy orders the prefilled requests joining the decode
//     batch at each step boundary, subject to the KvCapacityTracker's
//     byte budget (joins that would overflow are deferred);
//   - a PlacementPolicy decides which models' weight pins to hold,
//     acquire or evict against the shared residency budget (multi-model
//     zoos: keep-warm idle pins, demand-weighted resident sets), with a
//     per-pin fill barrier keeping rider timing honest.
// A request that finishes prefill joins the decode batch at the next
// step boundary — it does not wait for the batch to drain (continuous
// batching). The §IV-B BandwidthManager rebalances the CC:MC DMA budget
// split every throttle interval from the bytes actually pending on each
// side, and per-request completion callbacks record tail latency.
#ifndef EDGEMM_SERVE_SERVING_ENGINE_HPP
#define EDGEMM_SERVE_SERVING_ENGINE_HPP

#include <cstddef>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "baselines/gpu_backend.hpp"
#include "core/bandwidth_manager.hpp"
#include "core/chip.hpp"
#include "core/config.hpp"
#include "core/execution_backend.hpp"
#include "core/phase_scheduler.hpp"
#include "mem/memory_path.hpp"
#include "model/mllm_config.hpp"
#include "serve/engine_config.hpp"
#include "serve/kv_pages.hpp"
#include "serve/kv_tracker.hpp"
#include "serve/request.hpp"
#include "serve/request_queue.hpp"
#include "serve/residency_tracker.hpp"

namespace edgemm::serve {

/// Aggregate outcome of one trace replay. Latency percentiles and
/// throughput cover completed requests only; rejected requests count
/// against SLO attainment but not against the latency tail.
struct ServingResult {
  std::size_t completed = 0;
  std::size_t rejected = 0;  ///< dropped by the scheduler policy
  Cycle makespan = 0;  ///< first arrival to last token retired
  double makespan_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double mean_latency_ms = 0.0;
  double tokens_per_second = 0.0;
  double dram_utilization = 0.0;
  double mean_decode_batch = 0.0;  ///< average in-flight requests per step
  std::size_t decode_steps = 0;
  std::size_t peak_queue_depth = 0;
  std::size_t rebalances = 0;
  // --- Policy-seam observability -----------------------------------------
  std::size_t with_deadline = 0;  ///< requests that carried an SLO deadline
  std::size_t slo_attained = 0;   ///< completed on or before their deadline
  double slo_attainment = 1.0;    ///< attained / with_deadline (1 if none)
  std::size_t prefill_jobs = 0;   ///< CC-lane jobs (prefill chunks) dispatched
  /// Worst job queueing delay on the CC lane — the head-of-line blocking
  /// chunked prefill bounds.
  double max_cc_queue_delay_ms = 0.0;
  std::size_t kv_deferrals = 0;   ///< decode joins deferred for KV capacity
  // --- Weight-resident chunk chaining --------------------------------------
  /// Weight bytes the CC-lane prefill jobs actually DMAed (KV streams
  /// excluded). ChunkedPrefill multiplies this by ~the chunk count;
  /// residency claws it back toward the MonolithicPrefill floor.
  Bytes cc_weight_fetch_bytes = 0;
  /// Weight bytes residency zeroed (ops that rode a pinned layer group).
  Bytes cc_weight_bytes_saved = 0;
  std::size_t weight_pins = 0;           ///< budget-charging pin acquisitions
  std::size_t weight_pin_fallbacks = 0;  ///< failed acquisitions (re-fetch)
  /// Attaches that rode another request's pin of the same model instead
  /// of charging the budget again (share_weight_pins; 0 in per-request
  /// mode, where every attach is a fresh pin).
  std::size_t weight_shared_attaches = 0;
  Bytes peak_pinned_bytes = 0;           ///< residency high-water mark
  // --- Residency-aware model placement + fill barrier ----------------------
  /// Attaches that revived an idle kept-warm pin (a placement policy
  /// retained the model's bytes past its last rider): the whole prefill
  /// rides with no fill fetch and no barrier.
  std::size_t weight_warm_attaches = 0;
  /// Idle pins the placement policy evicted to make room for a hotter
  /// model's acquisition (or dropped at detach by retain_idle = false
  /// never counts — only evict_victims pressure evictions do).
  std::size_t placement_evictions = 0;
  /// Requests whose fresh-pin acquisition the placement policy denied
  /// at least once (the request keeps re-fetching; riders are never
  /// denied; retries of the same request are not re-counted).
  std::size_t placement_denials = 0;
  /// Weight bytes riders re-fetched because they dispatched before the
  /// pin owner's fill chunk retired (rider_fill_barrier; bounds the PR 4
  /// fill-timing optimism — 0 with the barrier off).
  Bytes rider_refetch_bytes = 0;
  // --- Paged KV cache (paged_kv; all zero in whole-footprint mode) --------
  std::size_t kv_pages_allocated = 0;  ///< cumulative page allocations
  /// == kv_pages_allocated once the trace drains (exact conservation).
  std::size_t kv_pages_freed = 0;
  /// Joins that rode an existing shared-prefix run instead of
  /// allocating it again (kv_prefix_sharing).
  std::size_t kv_shared_attaches = 0;
  std::size_t kv_shared_pages_saved = 0;  ///< pages those attaches skipped
  /// Partial boundary pages copied privately at join — the CoW fork of
  /// the page where the shared prefix ends and private tokens begin.
  std::size_t kv_cow_forks = 0;
  std::size_t kv_pages_swapped_out = 0;  ///< pages evicted to DRAM
  std::size_t kv_pages_swapped_in = 0;   ///< pages refilled from DRAM
  /// DRAM re-fetch bytes the swap tier charged at refill.
  Bytes kv_swap_refetch_bytes = 0;
  /// Requests preempted wholesale to DRAM mid-decode (swap-outs).
  std::size_t kv_swap_preemptions = 0;
  /// High-water mark of the CIM KV budget actually reserved — whole-
  /// footprint reservations (legacy) or resident pages (paged). The §9
  /// equal-budget comparison: paged mode either batches MORE requests or
  /// peaks LOWER here.
  Bytes peak_kv_reserved_bytes = 0;
  /// Largest decode batch any step ran — the sustained-concurrency
  /// headline paged KV raises at equal budget.
  std::size_t peak_decode_batch = 0;
  // --- Heterogeneous offload (fat_backend; all zero without one) -----------
  /// Requests that ran at least one prefill chunk on the fat backend.
  std::size_t offloaded_requests = 0;
  std::size_t offloaded_chunks = 0;  ///< prefill chunks the fat backend ran
  /// Bytes the fat backend streamed through its GDDR for those chunks
  /// (its own cost model: weights re-streamed per launch).
  Bytes fat_bytes_moved = 0;
  std::size_t fat_kernel_launches = 0;  ///< GPU kernel launches issued
  /// Fraction of the makespan the fat backend's prefill stream was busy.
  double fat_busy_fraction = 0.0;
  // --- KV return link (offloaded prefills ship KV back to EdgeMM) ----------
  std::size_t kv_return_transfers = 0;
  Bytes kv_return_bytes_sent = 0;
  Bytes kv_return_bytes_landed = 0;
  /// Probed at makespan end; conservation gate: sent == landed + in_flight.
  Bytes kv_return_bytes_in_flight = 0;
  double kv_return_max_queue_ms = 0.0;  ///< worst wait behind the wire
  // --- Swap-refill DMA (kv_swap_refill_dma; 0 with the knob off) -----------
  /// Swap-in re-fetch bytes injected as MC-lane DMA ops (== the
  /// kv_swap_refetch_bytes those refills charged when the knob is on).
  Bytes kv_swap_dma_bytes = 0;
  // --- Quality ledger (QualityPolicy; static defaults leave it clean) ------
  /// Judgments that took a request below its static per-model fraction.
  std::size_t quality_downgrades = 0;
  /// Judgments that brought a degraded request back to (or above) it.
  /// Conservation at drain: downgrades == restores + requests that
  /// finished still degraded.
  std::size_t quality_restores = 0;
  /// Tokens generated while their request was degraded (served below
  /// its static fraction).
  std::size_t tokens_at_degraded_quality = 0;
  /// Task-proxy answer-agreement priced at each completed request's
  /// served fraction (quality_accuracy_proxy): mean and worst case.
  /// Exactly 1.0 when nothing is pruned.
  double accuracy_proxy_mean = 1.0;
  double accuracy_proxy_min = 1.0;
};

/// Drives the heterogeneous chip through a request trace.
///
/// One-shot by design: each engine owns a fresh chip whose DRAM/DMA
/// statistics, policy estimators and records are one replay's state, so
/// run() throws std::logic_error on a second call instead of replaying
/// on a warmed chip. Use replay_trace() below when you only need the
/// outcome — it makes the one-replay contract a compile-time affordance
/// (no engine instance survives to misuse).
class ServingEngine {
 public:
  using CompletionCallback = std::function<void(const RequestRecord&)>;

  /// Throws std::invalid_argument for an empty model list or an invalid
  /// EngineConfig composition.
  ServingEngine(const core::ChipConfig& config,
                std::vector<model::MllmConfig> models, EngineConfig engine_config);

  /// PR-1 shim; prefer the EngineConfig constructor.
  [[deprecated("compose an EngineConfig instead of ServingOptions")]]
  ServingEngine(const core::ChipConfig& config,
                std::vector<model::MllmConfig> models, ServingOptions options);

  /// Fires inside the simulation whenever a request retires.
  void set_completion_callback(CompletionCallback callback);

  /// Replays `requests` to completion and returns aggregate metrics.
  /// Throws std::invalid_argument for an empty trace, duplicate ids,
  /// zero token counts, an out-of-range model index, or a request whose
  /// KV cache alone exceeds the configured KV capacity; std::logic_error
  /// on a second call.
  ServingResult run(std::vector<Request> requests);

  /// Per-request lifecycle records, in the order requests were passed.
  const std::vector<RequestRecord>& records() const { return records_; }

  const core::ChipTimingModel& chip() const { return local_.chip(); }

  /// The local (EdgeMM) execution backend behind the seam.
  const core::EdgeMmBackend& local_backend() const { return local_; }

  /// The paired fat backend; nullptr unless EngineConfig::fat_backend
  /// was set.
  const baselines::GpuBackend* fat_backend() const {
    return fat_ ? &*fat_ : nullptr;
  }

  /// The KV return link of the heterogeneous pair; nullptr without a
  /// fat backend.
  const mem::ChipLink* kv_return_link() const {
    return kv_return_link_ ? &*kv_return_link_ : nullptr;
  }

  /// KV accounting ledger; nullptr when EngineConfig left it disabled
  /// (or replaced it with the page allocator via paged_kv).
  const KvCapacityTracker* kv_tracker() const {
    return kv_ ? &*kv_ : nullptr;
  }

  /// Page-granular KV allocator; nullptr unless paged_kv is on with a
  /// KV budget set.
  const KvPageAllocator* kv_pages() const {
    return pages_ ? &*pages_ : nullptr;
  }

  /// Weight-residency ledger; nullptr when EngineConfig left it disabled
  /// (zero budget, or a planner without chains_weight_residency()).
  const WeightResidencyTracker* residency_tracker() const {
    return residency_ ? &*residency_ : nullptr;
  }

  /// Decode keep fraction the engine uses for `model_index` (the global
  /// EngineConfig constant, or the task-proxy derivation per model).
  double keep_fraction(std::size_t model_index) const {
    return keep_fraction_.at(model_index);
  }

 private:
  /// One admitted request's remaining prefill jobs (built once, consumed
  /// chunk by chunk; also cached for deferred queue heads so repeated
  /// admission judgments don't rebuild op lists). When a weight pin is
  /// attached, jobs from first_resident_chunk on are rebuilt with the
  /// pinned layer groups' weight ops marked resident.
  struct PrefillPlan {
    std::vector<std::size_t> chunk_tokens;
    std::vector<std::vector<core::GemmWork>> jobs;
    std::vector<Bytes> job_bytes;
    Bytes total_bytes = 0;
    /// Full-precision-equivalent CC bytes per job: what the chunk would
    /// stream at keep fraction 1 with the same residency. Feeds the
    /// per-model throughput estimators so a degraded co-tenant's
    /// shrunken chunks never skew admission estimates (== job_bytes
    /// whenever the plan is built undegraded).
    std::vector<Bytes> job_full_bytes;
    Bytes total_full_bytes = 0;
    /// The prefill ffn_keep the jobs were last built at (1.0 = full
    /// shapes); a quality re-judgment rebuilds unsubmitted jobs when the
    /// effective prefill keep moves.
    double built_keep = 1.0;
    std::size_t next = 0;
    Cycle chunk_started = 0;
    std::size_t resident_layers = 0;      ///< layer groups pinned (0 = none)
    std::size_t first_resident_chunk = 0; ///< chunks >= this ride the pin
    /// This request holds one refcount on pin_key's pin and MUST detach
    /// exactly once when its plan is dropped (see drop_plan).
    bool pin_attached = false;
    PinKey pin_key = 0;
    /// This request's fresh attach created the pin: its fill_chunk fetch
    /// is what lands the bytes on chip (mark_filled at its retirement).
    /// Riders of the pin re-fetch until then under the fill barrier.
    bool pin_owner = false;
    std::size_t fill_chunk = 0;           ///< valid when pin_owner
    /// Already counted toward placement_denials: a request re-asks at
    /// every chunk, but each denied REQUEST is counted once.
    bool placement_denied = false;
    /// Per-group fill landing: when this request's in-flight chunk
    /// re-fetched the pin's not-yet-landed groups, its retirement lands
    /// them (mark_landed up to this group count; 0 = nothing to land).
    std::size_t lands_to = 0;
    // --- Heterogeneous offload -------------------------------------------
    std::size_t offloaded_chunks = 0;  ///< chunks the fat backend ran
    std::size_t offload_tokens = 0;    ///< their prefill tokens (KV to ship)
    bool current_fat = false;          ///< the in-flight chunk is on fat
    Bytes current_fat_bytes = 0;       ///< its fat-cost-model job bytes
    /// Chunk 0's judgment, made at admission so pinning can be skipped
    /// for offloaded starts: 0 = unjudged, 1 = local, 2 = fat.
    std::uint8_t chunk0_target = 0;
  };

  /// build_chunk_ops resident_cap sentinel: no cap, ride the plan's full
  /// pinned layer count.
  static constexpr std::size_t kNoResidentCap =
      static_cast<std::size_t>(-1);

  /// Per-request paged-KV state (parallel to records_; only used when
  /// pages_ is live). The allocator owns the page counts; this caches
  /// the token->page math and the swap bookkeeping the engine needs at
  /// step boundaries.
  struct KvPagingState {
    std::size_t tokens_per_page = 1;
    KvPrefixKey prefix = 0;        ///< 0 = no shared run (or sharing off)
    std::size_t shared_pages = 0;  ///< full prefix pages shared with the group
    bool joined = false;           ///< holds pages (resident or swapped)
    bool swapped = false;          ///< preempted to DRAM, awaiting refill
    Cycle last_touch = 0;          ///< join / page-append / refill cycle
  };

  void on_arrival(std::size_t index);
  void pump_admission();
  /// Reserves `index`'s KV at decode join — or finds the reservation a
  /// decode-only tier already made at admission (the KV hand-off).
  /// False = deferred (stays decode-ready / queued).
  bool kv_join_reserve(std::size_t index);
  void kv_release(std::size_t index);
  /// Paged mode, step start: refills preempted requests from DRAM in
  /// strict preemption order (oldest first), re-joining them to active_.
  void refill_swapped();
  /// Paged mode, step start after joins: grows every active request's
  /// page table to cover the token this step generates, preempting
  /// SwapPolicy victims (or the grower itself, with no victim left) when
  /// the budget is full.
  void grow_page_tables();
  /// Swaps out ONE SwapPolicy victim among active_ (excluding position
  /// `grower_pos`, adjusted if the victim sat before it). False when no
  /// active holds an evictable private page.
  bool preempt_victim(std::size_t& grower_pos);
  void preempt_to_dram(std::size_t active_pos);
  AdmissionContext admission_context(std::size_t index);
  PrefillPlan& plan_for(std::size_t index);
  void drop_plan(std::size_t index);
  /// Builds one chunk's op list. `resident_cap` limits how many of the
  /// plan's pinned layer groups count as on-chip: kNoResidentCap rides
  /// them all, 0 re-fetches everything (the pin-granular barrier
  /// refetch), a landed-group count in between re-fetches only the
  /// groups whose fill has not landed yet (per-group fill landing).
  /// `ffn_keep` < 1 emits the quality seam's pre-pruned FFN shapes for
  /// the unpinned layers (the plan's resident_layers always keep full
  /// shapes, so pin and barrier byte math stays exact).
  std::vector<core::GemmWork> build_chunk_ops(
      const Request& r, const PrefillPlan& plan, std::size_t chunk,
      std::size_t resident_cap = kNoResidentCap, double ffn_keep = 1.0) const;
  /// The ffn_keep prefill chunks of `index` stream at: its served
  /// fraction when degraded (below the static per-model fraction), else
  /// 1.0 — the static engine never pruned prefill, only decode.
  double prefill_keep(std::size_t index) const;
  /// Consults the QualityPolicy for `index` and returns the judged keep
  /// fraction clamped into the effective band (the configured band
  /// widened to include the static fraction).
  double judge_quality(std::size_t index);
  /// Adopts a judged fraction: ledgers the downgrade/restore transition
  /// and rebuilds the plan's unsubmitted jobs when the effective prefill
  /// keep moved. Does NOT touch the cc-pending accumulators — callers
  /// own that (the plan's bytes may or may not be pending yet).
  void apply_quality(std::size_t index, double served);
  /// Rebuilds one unsubmitted job of `index`'s plan at the current
  /// prefill keep, updating job/full byte arrays and plan totals.
  void rebuild_chunk(std::size_t index, PrefillPlan& plan, std::size_t chunk);
  /// Memoized task-proxy agreement at (model, keep) — the quality
  /// ledger's accuracy pricing.
  double accuracy_for(std::size_t model, double keep);
  PlacementContext placement_context() const;
  void refresh_decayed_demand();
  /// Consults the OffloadPolicy for one chunk of `index`'s plan; always
  /// kLocal without a fat backend (the policy is never even called).
  OffloadTarget judge_offload(std::size_t index, std::size_t chunk);
  bool maybe_pin_weights(std::size_t index, std::size_t next_chunk);
  void submit_next_chunk(std::size_t index);
  void on_chunk_done(std::size_t index);
  void on_prefill_done(std::size_t index);
  void start_decode_step();
  void on_decode_step_done();
  void schedule_rebalance(Cycle interval);
  void rebalance();
  Bytes cc_job_bytes(const std::vector<core::GemmWork>& ops) const;

  core::ChipConfig config_;
  std::vector<model::MllmConfig> models_;
  EngineConfig engine_config_;
  /// The EdgeMM chip behind the ExecutionBackend seam (chip + scheduler
  /// + bandwidth manager, constructed in the pre-seam order).
  core::EdgeMmBackend local_;
  /// The paired fat backend (GpuBackend on local_'s simulator); engaged
  /// only when EngineConfig::fat_backend is set.
  std::optional<baselines::GpuBackend> fat_;
  /// Ledgered return wire for offloaded prefills' KV (ChipLink pricing,
  /// conservation-exact); engaged with fat_.
  std::optional<mem::ChipLink> kv_return_link_;
  std::optional<KvCapacityTracker> kv_;
  std::optional<KvPageAllocator> pages_;
  std::optional<WeightResidencyTracker> residency_;

  RequestQueue queue_;
  std::vector<RequestRecord> records_;
  std::unordered_map<RequestId, std::size_t> index_;
  std::unordered_map<std::size_t, PrefillPlan> plans_;  ///< by record index
  std::vector<std::size_t> decode_ready_;   ///< prefilled, awaiting a slot
  std::vector<std::size_t> active_;         ///< current decode batch
  /// Preempted-to-DRAM requests in preemption order (paged mode); they
  /// sit out decode steps until refill_swapped restores their pages.
  std::vector<std::size_t> kv_swapped_;
  std::vector<KvPagingState> kv_paging_;    ///< by record index (paged mode)
  /// Legacy-tracker reservation flags by record index: set at join (or
  /// at admission on a decode-only tier), cleared at release.
  std::vector<std::uint8_t> kv_reserved_;
  /// Per-token decode traffic model per served MllmConfig, probed at
  /// construction. One decode step of a batch with contexts c_i costs
  /// shared + sum_i (request + kv_slope * c_i): `shared` is the weight
  /// fetch amortized across the whole batch (Fig. 9(c)), the other two
  /// terms are per-request (activations + private KV stream).
  std::vector<double> decode_shared_bytes_;
  std::vector<double> decode_request_bytes_;
  std::vector<double> decode_kv_slope_;
  std::vector<double> keep_fraction_;       ///< decode keep fraction per model
  /// Bytes of one LLM layer group on the CC lane per model — the
  /// granularity weight pins are carved at.
  std::vector<Bytes> layer_weight_bytes_;

  CompletionCallback on_complete_;
  bool ran_ = false;
  std::size_t total_ = 0;
  std::size_t completed_ = 0;
  std::size_t rejected_ = 0;
  std::size_t inflight_ = 0;
  /// Per-model demand counts feeding PlacementContext (queued tracks the
  /// arrival queue, inflight the admitted-but-unfinished requests).
  std::vector<std::size_t> queued_per_model_;
  std::vector<std::size_t> inflight_per_model_;
  /// Time-decayed per-model demand EWMA feeding
  /// ModelDemand::demand_decayed: relaxes toward the live
  /// queued + inflight count with e^(-dt / tau) between refreshes
  /// (tau = EngineConfig::demand_decay_tau_s x the chip clock). Always
  /// maintained — placement policies opt in to reading it.
  std::vector<double> demand_decayed_;
  Cycle demand_decayed_at_ = 0;  ///< sim time of the last EWMA refresh
  std::size_t placement_denials_ = 0;
  double cc_pending_bytes_ = 0.0;
  /// Full-precision-equivalent twin of cc_pending_bytes_: what the same
  /// backlog would weigh undegraded. Queue-delay and service estimates
  /// divide THESE by the (full-equivalent) throughput estimators, so a
  /// degraded heavy co-tenant cannot skew a full-precision candidate's
  /// admission math; cc_pending_bytes_ (actual) keeps feeding the
  /// CC:MC bandwidth rebalance. Identical while nothing is degraded.
  double cc_pending_full_bytes_ = 0.0;
  // --- Quality ledger (see ServingResult) ---------------------------------
  std::size_t quality_downgrades_ = 0;
  std::size_t quality_restores_ = 0;
  std::size_t tokens_degraded_ = 0;
  /// Finished requests that missed their deadline so far (QualityContext
  /// pressure signal).
  std::size_t slo_misses_ = 0;
  /// accuracy_for memo: (model index, quantized keep) -> agreement.
  std::unordered_map<std::uint64_t, double> accuracy_memo_;
  Bytes cc_weight_fetched_ = 0;  ///< weight DMA issued by submitted CC jobs
  Bytes cc_weight_saved_ = 0;    ///< weight DMA avoided via residency
  Bytes rider_refetch_bytes_ = 0;  ///< barrier re-fetches (subset of fetched)
  std::size_t offloaded_requests_ = 0;  ///< requests with any fat chunk
  std::size_t offloaded_chunks_ = 0;    ///< fat-backend prefill chunks
  Bytes kv_swap_dma_bytes_ = 0;  ///< refill bytes injected as MC DMA ops
  /// Fat-backend throughput EWMA (its cost-model bytes per cycle),
  /// seeded from the spec's peak bandwidth; feeds OffloadContext.
  double fat_bytes_per_cycle_est_ = 0.0;
  std::size_t decode_steps_ = 0;
  std::size_t batch_occupancy_sum_ = 0;
  std::size_t peak_decode_batch_ = 0;
  std::size_t kv_cow_forks_ = 0;
  std::size_t peak_queue_depth_ = 0;
  std::size_t rebalances_ = 0;
  Cycle step_started_ = 0;
  /// Online estimators feeding AdmissionContext, PER MODEL so a heavy
  /// co-tenant's measurements never inflate a light model's
  /// estimated_service into spurious SLO rejections (EWMA over measured
  /// chunk throughput / decode-step duration; seeded analytically; a
  /// model's estimator only folds in chunks and decode steps that model
  /// took part in). With a single served model the sequences are
  /// byte-identical to the former engine-global scalars.
  std::vector<double> cc_bytes_per_cycle_est_;
  std::vector<double> decode_step_cycles_est_;
};

/// Result + records of a one-shot replay (replay_trace below).
struct ReplayOutcome {
  ServingResult result;
  std::vector<RequestRecord> records;
};

/// Constructs an engine on a fresh chip, replays `requests`, and returns
/// the outcome. The engine never escapes, so the one-replay-per-chip
/// contract cannot be violated at runtime.
ReplayOutcome replay_trace(const core::ChipConfig& config,
                           std::vector<model::MllmConfig> models,
                           EngineConfig engine_config,
                           std::vector<Request> requests,
                           ServingEngine::CompletionCallback on_complete = {});

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_SERVING_ENGINE_HPP
