// ClusterConfig: how a multi-chip cluster replays one shared trace.
#ifndef EDGEMM_SERVE_CLUSTER_CLUSTER_CONFIG_HPP
#define EDGEMM_SERVE_CLUSTER_CLUSTER_CONFIG_HPP

#include <cstddef>
#include <cstdint>
#include <memory>

#include "serve/cluster/router.hpp"

namespace edgemm::serve {

/// How the cluster splits the work across its chips.
enum class ClusterMode : std::uint8_t {
  /// Every chip is a full replica (prefill + decode); the RouterPolicy
  /// shards the trace across them.
  kReplica,
  /// Dedicated prefill chips stream finished KV caches to decode chips
  /// over the chip-to-chip link (mem::ChipLink); prefill work is
  /// balanced across the prefill tier, the RouterPolicy shards the
  /// decode tier.
  kDisaggregated,
};

const char* to_string(ClusterMode mode);

/// Builder-style cluster composition, mirroring EngineConfig. Defaults
/// are the identity cluster: 1 chip, replica mode, round-robin routing
/// — run_cluster on it replays the single-engine result byte-for-byte.
class ClusterConfig {
 public:
  ClusterConfig();

  /// Chips in the cluster. Throws std::invalid_argument on 0.
  ClusterConfig& chips(std::size_t count);

  ClusterConfig& mode(ClusterMode mode);

  /// Chips of the prefill tier (disaggregated mode only; chips [0, n)
  /// prefill, the rest decode). Throws std::invalid_argument on 0.
  ClusterConfig& prefill_chips(std::size_t count);

  /// Replica-mode trace router / disaggregated-mode decode-tier router.
  /// Throws std::invalid_argument on null.
  ClusterConfig& router(std::shared_ptr<const RouterPolicy> router);

  /// Worker threads for the underlying run_sweep over per-chip replays
  /// (0/1 = inline; the outcome is byte-identical at any count).
  ClusterConfig& workers(std::size_t count);

  std::size_t chips() const { return chips_; }
  ClusterMode mode() const { return mode_; }
  std::size_t prefill_chips() const { return prefill_chips_; }
  const RouterPolicy& router() const { return *router_; }
  std::size_t workers() const { return workers_; }

  /// Composition sanity: disaggregated mode needs at least one prefill
  /// AND one decode chip (prefill_chips in [1, chips)). Throws
  /// std::invalid_argument on violation.
  void validate() const;

 private:
  std::size_t chips_ = 1;
  ClusterMode mode_ = ClusterMode::kReplica;
  std::size_t prefill_chips_ = 1;
  std::shared_ptr<const RouterPolicy> router_;
  std::size_t workers_ = 1;
};

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_CLUSTER_CLUSTER_CONFIG_HPP
