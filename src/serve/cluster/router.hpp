// RouterPolicy seam: which chip of a cluster serves a request.
//
// The ClusterEngine replays ONE shared trace across N per-chip
// ServingEngines. Routing is the cluster-level analogue of the engine's
// policy seams: a deterministic, side-effect-free judgment over the
// request and the per-chip loads accumulated so far. Because every chip
// replays independently (each owns its own simulator), routing is
// STATIC — decided in trace order before any chip runs — which is what
// keeps a cluster replay byte-identical at any sweep worker count.
//
// Three policies mirror the serving literature's replica routers:
//   - RoundRobinRouter:  request i -> chip i mod N (the baseline);
//   - LeastLoadedRouter: cheapest chip by accumulated request cost;
//   - ModelAffinityRouter: a model's requests keep landing on the chip
//     already serving that model — the same demand signal
//     DemandWeightedPlacement ranks pins by, so the model's weight pin
//     stays warm on its home chip instead of being re-filled everywhere
//     — spilling to the least-loaded chip only when the home chip's
//     backlog runs too far ahead of the cluster.
#ifndef EDGEMM_SERVE_CLUSTER_ROUTER_HPP
#define EDGEMM_SERVE_CLUSTER_ROUTER_HPP

#include <cstddef>
#include <vector>

#include "serve/request.hpp"

namespace edgemm::serve {

/// Accumulated routing state of one chip (maintained by the
/// ClusterEngine as it routes the trace in order; policies only read it).
struct ChipLoad {
  std::size_t assigned_requests = 0;
  /// Sum of request_route_cost over the requests routed here — the
  /// token-count proxy for how much work the chip already owes.
  double estimated_cost = 0.0;
  /// Requests routed here per model index (the affinity signal).
  std::vector<std::size_t> per_model;
};

/// What a routing judgment sees: one entry per chip, in chip order.
struct RouterContext {
  std::vector<ChipLoad> chips;
};

/// Routing cost proxy of one request: total tokens it moves through a
/// chip (encoder crops weight the prompt side — vision tokens dominate
/// MLLM prefill).
double request_route_cost(const Request& r);

/// Cluster routing seam. Implementations must be deterministic pure
/// functions of (request, context) — routing happens in trace order and
/// its output IS the cluster's reproducibility contract.
class RouterPolicy {
 public:
  virtual ~RouterPolicy() = default;
  virtual const char* name() const = 0;
  /// Chip index in [0, ctx.chips.size()) that serves `r`.
  virtual std::size_t route(const Request& r,
                            const RouterContext& ctx) const = 0;
};

/// Request i -> chip i mod N, blind to cost and model.
class RoundRobinRouter final : public RouterPolicy {
 public:
  const char* name() const override { return "round-robin"; }
  std::size_t route(const Request& r, const RouterContext& ctx) const override;
};

/// Cheapest chip by accumulated estimated_cost (ties to the lower chip
/// index) — the classic join-shortest-queue approximation.
class LeastLoadedRouter final : public RouterPolicy {
 public:
  const char* name() const override { return "least-loaded"; }
  std::size_t route(const Request& r, const RouterContext& ctx) const override;
};

/// Routes a request to the chip already serving the most requests of its
/// model (its HOME chip), so the model's shared weight pin is filled
/// once and every later request rides it warm. A model nobody serves
/// yet homes on the least-loaded chip. When the home chip's accumulated
/// cost runs more than spill_factor x this request's cost ahead of the
/// cluster's cheapest chip, the request spills there instead — affinity
/// must not starve the rest of the cluster.
class ModelAffinityRouter final : public RouterPolicy {
 public:
  explicit ModelAffinityRouter(double spill_factor = 4.0);
  const char* name() const override { return "model-affinity"; }
  std::size_t route(const Request& r, const RouterContext& ctx) const override;
  double spill_factor() const { return spill_factor_; }

 private:
  double spill_factor_;
};

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_CLUSTER_ROUTER_HPP
