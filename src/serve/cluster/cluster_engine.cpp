#include "serve/cluster/cluster_engine.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/statistics.hpp"
#include "common/units.hpp"
#include "mem/memory_path.hpp"
#include "model/workload.hpp"
#include "serve/sweep.hpp"

namespace edgemm::serve {

namespace {

/// Routes the requests picked out by `order` across `chips` chips via
/// `router`, maintaining the per-chip load state in routing order.
/// Returns each chip's original-trace indices, in routed order.
std::vector<std::vector<std::size_t>> route_requests(
    const std::vector<Request>& requests, const std::vector<std::size_t>& order,
    std::size_t chips, std::size_t models, const RouterPolicy& router) {
  RouterContext ctx;
  ctx.chips.assign(chips, ChipLoad{});
  for (ChipLoad& load : ctx.chips) load.per_model.assign(models, 0);
  std::vector<std::vector<std::size_t>> assigned(chips);
  for (const std::size_t i : order) {
    const Request& r = requests[i];
    const std::size_t c = router.route(r, ctx);
    if (c >= chips) {
      throw std::logic_error(
          "run_cluster: RouterPolicy routed a request out of chip range");
    }
    ChipLoad& load = ctx.chips[c];
    ++load.assigned_requests;
    load.estimated_cost += request_route_cost(r);
    ++load.per_model[r.model];
    assigned[c].push_back(i);
  }
  return assigned;
}

/// One tier's replay: ServingResult per chip (default for an empty chip
/// — ServingEngine rejects empty traces, and an idle chip has nothing to
/// price) plus each chip's records in its assigned order.
struct TierOutcome {
  std::vector<ServingResult> per_chip;
  std::vector<std::vector<RequestRecord>> records;
};

/// Replays every non-empty chip of a tier through run_sweep (shards
/// price in parallel; outcome order is fixed by case index, so the tier
/// is byte-identical at any worker count). `arrivals`, when non-null,
/// overrides each request's arrival cycle (the decode tier re-times
/// requests to their KV link-arrival).
TierOutcome replay_tier(const core::ChipConfig& chip,
                        const std::vector<model::MllmConfig>& models,
                        const EngineConfig& engine,
                        const std::vector<Request>& requests,
                        const std::vector<std::vector<std::size_t>>& assigned,
                        const std::vector<Cycle>* arrivals,
                        const char* label_prefix, std::size_t workers) {
  std::vector<SweepCase> cases;
  std::vector<std::size_t> case_chip;
  for (std::size_t c = 0; c < assigned.size(); ++c) {
    if (assigned[c].empty()) continue;
    SweepCase sc;
    sc.label = std::string(label_prefix) + std::to_string(c);
    sc.chip = chip;
    sc.models = models;
    sc.engine = engine;
    sc.requests.reserve(assigned[c].size());
    for (const std::size_t i : assigned[c]) {
      Request r = requests[i];
      if (arrivals) r.arrival = (*arrivals)[i];
      sc.requests.push_back(r);
    }
    case_chip.push_back(c);
    cases.push_back(std::move(sc));
  }
  TierOutcome tier;
  tier.per_chip.assign(assigned.size(), ServingResult{});
  tier.records.resize(assigned.size());
  if (cases.empty()) return tier;
  auto outcomes = run_sweep(cases, SweepOptions{workers});
  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    tier.per_chip[case_chip[k]] = outcomes[k].result;
    tier.records[case_chip[k]] = std::move(outcomes[k].records);
  }
  return tier;
}

/// Recomputes the trace-level aggregates over the merged records with
/// the EXACT formulas ServingEngine::run uses, so a 1-chip cluster's
/// numbers are bit-identical to the single engine's.
void aggregate_records(const std::vector<RequestRecord>& records,
                       double clock_hz, ClusterResult& result) {
  Cycle first_arrival = records.front().request.arrival;
  Cycle last_finish = 0;
  std::size_t total_tokens = 0;
  std::vector<double> latencies_ms;
  for (const RequestRecord& rec : records) {
    first_arrival = std::min(first_arrival, rec.request.arrival);
    if (rec.rejected) ++result.rejected;
    if (rec.request.deadline > 0) {
      ++result.with_deadline;
      if (rec.deadline_met()) ++result.slo_attained;
    }
    if (!rec.done) continue;
    ++result.completed;
    last_finish = std::max(last_finish, rec.finish);
    total_tokens += rec.tokens_generated;
    latencies_ms.push_back(rec.latency_ms(clock_hz));
  }
  result.makespan =
      last_finish > first_arrival ? last_finish - first_arrival : 0;
  result.makespan_ms = cycles_to_ms(result.makespan, clock_hz);
  result.p50_latency_ms = percentile(latencies_ms, 50.0);
  result.p95_latency_ms = percentile(latencies_ms, 95.0);
  result.p99_latency_ms = percentile(latencies_ms, 99.0);
  double sum = 0.0;
  for (const double v : latencies_ms) sum += v;
  result.mean_latency_ms =
      latencies_ms.empty() ? 0.0
                           : sum / static_cast<double>(latencies_ms.size());
  result.tokens_per_second =
      static_cast<double>(total_tokens) /
      cycles_to_seconds(std::max<Cycle>(result.makespan, 1), clock_hz);
  result.slo_attainment =
      result.with_deadline > 0
          ? static_cast<double>(result.slo_attained) /
                static_cast<double>(result.with_deadline)
          : 1.0;
}

}  // namespace

ClusterOutcome run_cluster(const core::ChipConfig& chip,
                           const std::vector<model::MllmConfig>& models,
                           const EngineConfig& engine,
                           const ClusterConfig& cluster,
                           std::vector<Request> requests) {
  cluster.validate();
  if (requests.empty()) {
    throw std::invalid_argument("run_cluster: empty trace");
  }
  if (engine.phase() != EnginePhase::kFull) {
    throw std::invalid_argument(
        "run_cluster: the cluster owns the phase split — pass a kFull "
        "EngineConfig and pick a ClusterMode instead");
  }
  for (const Request& r : requests) {
    if (r.model >= models.size()) {
      throw std::invalid_argument("run_cluster: model index out of range");
    }
  }

  const std::size_t n = cluster.chips();
  ClusterOutcome out;
  out.result.mode = cluster.mode();
  out.result.chips = n;
  out.records.resize(requests.size());

  std::vector<std::size_t> order(requests.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  std::optional<mem::ChipLink> link;
  if (cluster.mode() == ClusterMode::kReplica) {
    // --- Replica sharding: route, then replay every shard independently.
    const auto assigned =
        route_requests(requests, order, n, models.size(), cluster.router());
    TierOutcome tier = replay_tier(chip, models, engine, requests, assigned,
                                   nullptr, "chip", cluster.workers());
    out.result.per_chip = std::move(tier.per_chip);
    for (std::size_t c = 0; c < n; ++c) {
      out.result.routed_per_chip.push_back(assigned[c].size());
      for (std::size_t j = 0; j < assigned[c].size(); ++j) {
        out.records[assigned[c][j]] = std::move(tier.records[c][j]);
      }
    }
  } else {
    // --- Disaggregated prefill/decode --------------------------------------
    const std::size_t prefill_n = cluster.prefill_chips();
    const std::size_t decode_n = n - prefill_n;
    // Prefill tier: balance by the prefill-side cost alone (vision crops
    // x prompt tokens — output length is the DECODE tier's problem).
    std::vector<std::vector<std::size_t>> pre_assigned(prefill_n);
    std::vector<double> pre_cost(prefill_n, 0.0);
    for (const std::size_t i : order) {
      std::size_t best = 0;
      for (std::size_t p = 1; p < prefill_n; ++p) {
        if (pre_cost[p] < pre_cost[best]) best = p;
      }
      pre_assigned[best].push_back(i);
      pre_cost[best] += static_cast<double>(requests[i].input_tokens *
                                            requests[i].crops);
    }
    EngineConfig prefill_engine = engine;
    prefill_engine.phase(EnginePhase::kPrefillOnly);
    TierOutcome pre_tier =
        replay_tier(chip, models, prefill_engine, requests, pre_assigned,
                    nullptr, "prefill", cluster.workers());

    // Ship each finished KV cache over the shared chip-to-chip link in
    // (prefill_end, id) order — the deterministic arrival order of the
    // transfers at the serialized wire. A prefill-rejected request never
    // ships and never decodes.
    struct Shipment {
      std::size_t index = 0;
      Cycle ready = 0;
      Bytes bytes = 0;
    };
    std::vector<Shipment> shipments;
    for (std::size_t p = 0; p < prefill_n; ++p) {
      for (std::size_t j = 0; j < pre_assigned[p].size(); ++j) {
        const std::size_t i = pre_assigned[p][j];
        out.records[i] = pre_tier.records[p][j];
        if (!out.records[i].done) continue;
        const Bytes bytes =
            static_cast<Bytes>(requests[i].input_tokens) *
            model::kv_bytes_per_token(models[requests[i].model]);
        shipments.push_back(Shipment{i, out.records[i].prefill_end, bytes});
      }
    }
    std::sort(shipments.begin(), shipments.end(),
              [&requests](const Shipment& a, const Shipment& b) {
                if (a.ready != b.ready) return a.ready < b.ready;
                return requests[a.index].id < requests[b.index].id;
              });
    link.emplace(chip.chip_link_bytes_per_cycle, chip.chip_link_latency);
    std::vector<Cycle> kv_arrival(requests.size(), 0);
    std::vector<std::size_t> shipped_order;
    shipped_order.reserve(shipments.size());
    for (const Shipment& s : shipments) {
      kv_arrival[s.index] = link->transfer(s.bytes, s.ready);
      shipped_order.push_back(s.index);
    }

    // Decode tier: the RouterPolicy shards the shipped requests, each
    // re-arriving at its KV's link-arrival cycle.
    const auto dec_assigned = route_requests(requests, shipped_order, decode_n,
                                             models.size(), cluster.router());
    EngineConfig decode_engine = engine;
    decode_engine.phase(EnginePhase::kDecodeOnly);
    TierOutcome dec_tier =
        replay_tier(chip, models, decode_engine, requests, dec_assigned,
                    &kv_arrival, "decode", cluster.workers());

    // Merge: prefill-side fields (admitted, prefill_*, pin stats) come
    // from the prefill chip's record, decode-side fields from the decode
    // chip's; the request itself keeps its ORIGINAL arrival, so latency
    // spans the whole disaggregated path including the link.
    for (std::size_t d = 0; d < decode_n; ++d) {
      for (std::size_t j = 0; j < dec_assigned[d].size(); ++j) {
        const std::size_t i = dec_assigned[d][j];
        const RequestRecord& dec = dec_tier.records[d][j];
        RequestRecord& rec = out.records[i];
        rec.first_token = dec.first_token;
        rec.finish = dec.finish;
        rec.tokens_generated = dec.tokens_generated;
        // The merged record reports the WORST fraction either tier served
        // the request at — a prefill-side degradation is not erased by a
        // decode tier that happened to judge it back up.
        rec.keep_fraction_served =
            std::min(rec.keep_fraction_served, dec.keep_fraction_served);
        rec.done = dec.done;
        rec.rejected = dec.rejected;
      }
    }
    out.result.per_chip = std::move(pre_tier.per_chip);
    out.result.per_chip.insert(out.result.per_chip.end(),
                               dec_tier.per_chip.begin(),
                               dec_tier.per_chip.end());
    for (std::size_t p = 0; p < prefill_n; ++p) {
      out.result.routed_per_chip.push_back(pre_assigned[p].size());
    }
    for (std::size_t d = 0; d < decode_n; ++d) {
      out.result.routed_per_chip.push_back(dec_assigned[d].size());
    }
  }

  aggregate_records(out.records, chip.clock_hz, out.result);
  std::size_t acc_completed = 0;
  double acc_weighted_sum = 0.0;
  for (const ServingResult& r : out.result.per_chip) {
    out.result.cc_weight_fetch_bytes += r.cc_weight_fetch_bytes;
    out.result.cc_weight_bytes_saved += r.cc_weight_bytes_saved;
    out.result.rider_refetch_bytes += r.rider_refetch_bytes;
    out.result.weight_pins += r.weight_pins;
    out.result.placement_denials += r.placement_denials;
    out.result.offloaded_requests += r.offloaded_requests;
    out.result.offloaded_chunks += r.offloaded_chunks;
    out.result.fat_bytes_moved += r.fat_bytes_moved;
    out.result.kv_return_bytes += r.kv_return_bytes_sent;
    out.result.quality_downgrades += r.quality_downgrades;
    out.result.quality_restores += r.quality_restores;
    out.result.tokens_at_degraded_quality += r.tokens_at_degraded_quality;
    if (r.completed > 0) {
      acc_completed += r.completed;
      acc_weighted_sum +=
          r.accuracy_proxy_mean * static_cast<double>(r.completed);
      out.result.accuracy_proxy_min =
          std::min(out.result.accuracy_proxy_min, r.accuracy_proxy_min);
    }
  }
  if (acc_completed > 0) {
    out.result.accuracy_proxy_mean =
        acc_weighted_sum / static_cast<double>(acc_completed);
  }
  if (link) {
    // Probe the byte ledger at the cluster's drain point (the later of
    // the last finish and the last link arrival): everything sent has
    // landed, nothing is in flight — exact conservation.
    Cycle probe = link->last_arrival();
    for (const RequestRecord& rec : out.records) {
      if (rec.done) probe = std::max(probe, rec.finish);
    }
    out.result.kv_transfers = link->transfers().size();
    out.result.kv_bytes_sent = link->bytes_sent();
    out.result.kv_migration_bytes = link->bytes_landed_by(probe);
    out.result.kv_bytes_in_flight = link->bytes_in_flight_at(probe);
    out.result.link_occupancy =
        static_cast<double>(link->busy_cycles()) /
        static_cast<double>(std::max<Cycle>(out.result.makespan, 1));
    out.result.max_link_queue_ms =
        cycles_to_ms(link->max_queue_wait(), chip.clock_hz);
  }
  return out;
}

bool cluster_results_identical(const ClusterResult& a, const ClusterResult& b) {
  if (!(a.mode == b.mode && a.chips == b.chips && a.completed == b.completed &&
        a.rejected == b.rejected && a.makespan == b.makespan &&
        a.makespan_ms == b.makespan_ms &&
        a.p50_latency_ms == b.p50_latency_ms &&
        a.p95_latency_ms == b.p95_latency_ms &&
        a.p99_latency_ms == b.p99_latency_ms &&
        a.mean_latency_ms == b.mean_latency_ms &&
        a.tokens_per_second == b.tokens_per_second &&
        a.with_deadline == b.with_deadline &&
        a.slo_attained == b.slo_attained &&
        a.slo_attainment == b.slo_attainment &&
        a.cc_weight_fetch_bytes == b.cc_weight_fetch_bytes &&
        a.cc_weight_bytes_saved == b.cc_weight_bytes_saved &&
        a.rider_refetch_bytes == b.rider_refetch_bytes &&
        a.weight_pins == b.weight_pins &&
        a.placement_denials == b.placement_denials &&
        a.offloaded_requests == b.offloaded_requests &&
        a.offloaded_chunks == b.offloaded_chunks &&
        a.fat_bytes_moved == b.fat_bytes_moved &&
        a.quality_downgrades == b.quality_downgrades &&
        a.quality_restores == b.quality_restores &&
        a.tokens_at_degraded_quality == b.tokens_at_degraded_quality &&
        a.accuracy_proxy_mean == b.accuracy_proxy_mean &&
        a.accuracy_proxy_min == b.accuracy_proxy_min &&
        a.kv_return_bytes == b.kv_return_bytes &&
        a.kv_transfers == b.kv_transfers &&
        a.kv_bytes_sent == b.kv_bytes_sent &&
        a.kv_migration_bytes == b.kv_migration_bytes &&
        a.kv_bytes_in_flight == b.kv_bytes_in_flight &&
        a.link_occupancy == b.link_occupancy &&
        a.max_link_queue_ms == b.max_link_queue_ms &&
        a.routed_per_chip == b.routed_per_chip &&
        a.per_chip.size() == b.per_chip.size())) {
    return false;
  }
  for (std::size_t c = 0; c < a.per_chip.size(); ++c) {
    if (!results_identical(a.per_chip[c], b.per_chip[c])) return false;
  }
  return true;
}

bool cluster_outcomes_identical(const ClusterOutcome& a,
                                const ClusterOutcome& b) {
  if (!cluster_results_identical(a.result, b.result) ||
      a.records.size() != b.records.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (!record_identical(a.records[i], b.records[i])) return false;
  }
  return true;
}

}  // namespace edgemm::serve
