#include "serve/cluster/cluster_config.hpp"

#include <stdexcept>
#include <utility>

namespace edgemm::serve {

const char* to_string(ClusterMode mode) {
  switch (mode) {
    case ClusterMode::kReplica: return "replica";
    case ClusterMode::kDisaggregated: return "disaggregated";
  }
  return "?";
}

ClusterConfig::ClusterConfig() : router_(std::make_shared<RoundRobinRouter>()) {}

ClusterConfig& ClusterConfig::chips(std::size_t count) {
  if (count == 0) {
    throw std::invalid_argument("ClusterConfig: chips must be > 0");
  }
  chips_ = count;
  return *this;
}

ClusterConfig& ClusterConfig::mode(ClusterMode mode) {
  mode_ = mode;
  return *this;
}

ClusterConfig& ClusterConfig::prefill_chips(std::size_t count) {
  if (count == 0) {
    throw std::invalid_argument("ClusterConfig: prefill_chips must be > 0");
  }
  prefill_chips_ = count;
  return *this;
}

ClusterConfig& ClusterConfig::router(
    std::shared_ptr<const RouterPolicy> router) {
  if (!router) {
    throw std::invalid_argument("ClusterConfig: null RouterPolicy");
  }
  router_ = std::move(router);
  return *this;
}

ClusterConfig& ClusterConfig::workers(std::size_t count) {
  workers_ = count;
  return *this;
}

void ClusterConfig::validate() const {
  if (chips_ == 0 || !router_) {
    throw std::invalid_argument("ClusterConfig: invalid composition");
  }
  if (mode_ == ClusterMode::kDisaggregated) {
    if (chips_ < 2) {
      throw std::invalid_argument(
          "ClusterConfig: disaggregated mode needs at least 2 chips");
    }
    if (prefill_chips_ >= chips_) {
      throw std::invalid_argument(
          "ClusterConfig: disaggregated mode needs at least 1 decode chip "
          "(prefill_chips < chips)");
    }
  }
}

}  // namespace edgemm::serve
