#include "serve/cluster/router.hpp"

#include <stdexcept>

namespace edgemm::serve {

namespace {

/// Chip with the lowest accumulated cost, ties to the lower index.
std::size_t least_loaded(const RouterContext& ctx) {
  std::size_t best = 0;
  for (std::size_t c = 1; c < ctx.chips.size(); ++c) {
    if (ctx.chips[c].estimated_cost < ctx.chips[best].estimated_cost) best = c;
  }
  return best;
}

void require_chips(const RouterContext& ctx) {
  if (ctx.chips.empty()) {
    throw std::invalid_argument("RouterPolicy: empty cluster context");
  }
}

}  // namespace

double request_route_cost(const Request& r) {
  return static_cast<double>(r.input_tokens * r.crops + r.output_tokens);
}

std::size_t RoundRobinRouter::route(const Request&,
                                    const RouterContext& ctx) const {
  require_chips(ctx);
  std::size_t assigned = 0;
  for (const ChipLoad& load : ctx.chips) assigned += load.assigned_requests;
  return assigned % ctx.chips.size();
}

std::size_t LeastLoadedRouter::route(const Request&,
                                     const RouterContext& ctx) const {
  require_chips(ctx);
  return least_loaded(ctx);
}

ModelAffinityRouter::ModelAffinityRouter(double spill_factor)
    : spill_factor_(spill_factor) {
  if (!(spill_factor_ >= 0.0)) {
    throw std::invalid_argument(
        "ModelAffinityRouter: spill_factor must be non-negative");
  }
}

std::size_t ModelAffinityRouter::route(const Request& r,
                                       const RouterContext& ctx) const {
  require_chips(ctx);
  // Home = the chip with the most of this model's requests so far (ties
  // to the lower index; zero everywhere = the model is homeless).
  std::size_t home = 0;
  std::size_t home_count = 0;
  for (std::size_t c = 0; c < ctx.chips.size(); ++c) {
    const ChipLoad& load = ctx.chips[c];
    const std::size_t count =
        r.model < load.per_model.size() ? load.per_model[r.model] : 0;
    if (count > home_count) {
      home = c;
      home_count = count;
    }
  }
  const std::size_t cheapest = least_loaded(ctx);
  if (home_count == 0) return cheapest;
  // Affinity holds while the home chip's backlog stays within
  // spill_factor request-costs of the cluster's cheapest chip.
  const double gap = ctx.chips[home].estimated_cost -
                     ctx.chips[cheapest].estimated_cost;
  if (gap > spill_factor_ * request_route_cost(r)) return cheapest;
  return home;
}

}  // namespace edgemm::serve
