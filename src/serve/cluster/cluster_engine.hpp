// ClusterEngine: one shared trace replayed across N per-chip
// ServingEngines (the EdgeMM fleet-scale question — what does a RACK of
// Fig. 10 chips serve, and where does disaggregation pay?).
//
// Each chip of the cluster is a full ServingEngine on a fresh chip with
// its own simulator, so chips share no simulated state; what binds them
// into a cluster is decided up front, deterministically:
//   - REPLICA mode: the RouterPolicy shards the trace across the chips
//     in trace order, then every chip replays its shard independently
//     (through run_sweep, so shards price in parallel and the outcome is
//     byte-identical at any worker count). A 1-chip cluster routes
//     everything to chip 0 and reproduces the single-engine result
//     bit-for-bit.
//   - DISAGGREGATED mode: chips [0, prefill_chips) run prefill-only
//     engines (EnginePhase::kPrefillOnly, balanced by prefill cost);
//     each finished KV cache then crosses ONE shared chip-to-chip link
//     (mem::ChipLink, sized by ChipConfig::chip_link_bytes_per_cycle /
//     chip_link_latency) in (prefill_end, id) order; the RouterPolicy
//     shards the decode tier, where each request re-enters a decode-only
//     engine (EnginePhase::kDecodeOnly) at its KV's link-arrival cycle.
//     The KV migration bytes join the byte ledger: ClusterResult
//     reports bytes sent/landed/in-flight with exact conservation.
//
// Cross-chip timing needs no shared simulator because the dataflow is
// acyclic: prefill replays fix the transfer ready-times, the link model
// fixes the arrival times, and the decode replays start from those.
#ifndef EDGEMM_SERVE_CLUSTER_CLUSTER_ENGINE_HPP
#define EDGEMM_SERVE_CLUSTER_CLUSTER_ENGINE_HPP

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "model/mllm_config.hpp"
#include "serve/cluster/cluster_config.hpp"
#include "serve/engine_config.hpp"
#include "serve/serving_engine.hpp"

namespace edgemm::serve {

/// Aggregate outcome of one cluster replay: the trace-level metrics
/// recomputed over the merged per-request records (same formulas as one
/// ServingEngine, so a 1-chip cluster matches it bit-for-bit), the KV
/// migration ledger, and every chip's own ServingResult.
struct ClusterResult {
  ClusterMode mode = ClusterMode::kReplica;
  std::size_t chips = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  Cycle makespan = 0;  ///< first arrival to last token retired, cluster-wide
  double makespan_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double mean_latency_ms = 0.0;
  double tokens_per_second = 0.0;
  std::size_t with_deadline = 0;
  std::size_t slo_attained = 0;
  double slo_attainment = 1.0;
  // --- Cluster-wide weight-traffic ledger (sums over the chips) ----------
  Bytes cc_weight_fetch_bytes = 0;
  Bytes cc_weight_bytes_saved = 0;
  Bytes rider_refetch_bytes = 0;
  std::size_t weight_pins = 0;
  std::size_t placement_denials = 0;
  // --- Heterogeneous offload ledger (sums over the chips; every chip
  // --- may be an EdgeMM + fat-backend pair, see docs/HETEROGENEOUS.md) ---
  std::size_t offloaded_requests = 0;  ///< requests with >= 1 fat chunk
  std::size_t offloaded_chunks = 0;    ///< prefill chunks the fat backend ran
  Bytes fat_bytes_moved = 0;           ///< fat-backend DRAM traffic priced
  // --- Quality ledger (QualityPolicy seam; sums over the chips, the
  // --- accuracy proxies weighted/min'd over chips that completed work) ---
  std::size_t quality_downgrades = 0;
  std::size_t quality_restores = 0;
  std::size_t tokens_at_degraded_quality = 0;
  /// Completed-weighted mean of the chips' accuracy_proxy_mean (1.0 when
  /// nothing completed anywhere).
  double accuracy_proxy_mean = 1.0;
  /// Min over chips with completed > 0 of accuracy_proxy_min.
  double accuracy_proxy_min = 1.0;
  /// KV bytes shipped fat -> EdgeMM over the per-chip return links
  /// (sent == landed per chip once each engine drains, so one sum
  /// suffices for the cluster ledger).
  Bytes kv_return_bytes = 0;
  // --- KV migration over the chip-to-chip link (disaggregated mode) ------
  std::size_t kv_transfers = 0;    ///< finished prefills shipped to decode
  Bytes kv_bytes_sent = 0;         ///< entered the link (start cycle)
  Bytes kv_migration_bytes = 0;    ///< landed on a decode chip (arrival)
  /// In flight at the drain probe (the later of last finish and last
  /// link arrival) — exactly 0 once the cluster drains, and
  /// kv_bytes_sent == kv_migration_bytes + kv_bytes_in_flight always.
  Bytes kv_bytes_in_flight = 0;
  double link_occupancy = 0.0;     ///< wire-busy cycles / cluster makespan
  double max_link_queue_ms = 0.0;  ///< worst KV wait for the serialized wire
  // --- Per-chip detail ----------------------------------------------------
  /// Requests routed to each chip (disaggregated: prefill tier first,
  /// then decode tier — decode counts only completed prefills).
  std::vector<std::size_t> routed_per_chip;
  /// Each chip's own replay result, chip order (a chip that received no
  /// requests reports a default ServingResult).
  std::vector<ServingResult> per_chip;
};

/// Result + merged per-request records (original trace order; in
/// disaggregated mode each record splices the prefill-side fields from
/// the prefill chip with the decode-side fields from the decode chip).
struct ClusterOutcome {
  ClusterResult result;
  std::vector<RequestRecord> records;
};

/// Replays `requests` across a cluster of `cluster.chips()` chips, each
/// configured as (chip, models, engine). Runs unmodified on both replay
/// tiers — the engine config's ReplayMode is replicated per chip.
/// Throws std::invalid_argument for an empty trace or an invalid
/// ClusterConfig; anything a per-chip ServingEngine throws propagates.
ClusterOutcome run_cluster(const core::ChipConfig& chip,
                           const std::vector<model::MllmConfig>& models,
                           const EngineConfig& engine,
                           const ClusterConfig& cluster,
                           std::vector<Request> requests);

/// Field-by-field equality of two cluster results (exact, including the
/// floating-point metrics and every per-chip result).
bool cluster_results_identical(const ClusterResult& a, const ClusterResult& b);

/// Outcome equality: result plus every merged record, field by field.
bool cluster_outcomes_identical(const ClusterOutcome& a,
                                const ClusterOutcome& b);

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_CLUSTER_CLUSTER_ENGINE_HPP
