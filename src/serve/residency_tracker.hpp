// Weight-residency accounting for chunked prefill (the ROADMAP item
// "weight-resident chunk chaining").
//
// PR 2's ChunkedPrefill is honest about its cost: every chunk re-fetches
// the full layer weights, multiplying CC weight traffic by the chunk
// count. EdgeMM's premise — and the reason CHIME / SLIM push weights
// toward near-memory or scratchpad residency — is that edge DRAM
// bandwidth is the scarce resource, so a layer group pinned on-chip
// across consecutive chunks of the SAME request recovers most of the
// monolithic-prefill traffic while keeping chunking's interactivity.
//
// This tracker is the byte ledger behind that: a pin covering as many
// whole layer groups as fit the remaining budget is acquired when the
// first chunk fetches them; later chunks mark those layers' weight ops
// `weights_resident` (zero weight DMA, see
// core::GemmWork::weights_resident). A competing pin that would
// overflow the budget is NEVER allowed to stall the lane: the
// acquisition fails, the request simply keeps re-fetching (the PR 2
// behavior), and the failure is counted as a fallback.
//
// Pins are REFCOUNTED and model-scoped (PR 4): the weights of a model's
// layer groups are the same bytes no matter which request streams them,
// so two in-flight requests serving the same model share ONE pin — the
// first attach fetches and charges the budget, later attaches under the
// same key ride for free (shared_attaches counter), and the bytes are
// released only when the LAST attached request detaches. The PR 3
// per-request behavior (every request charges the full bytes) is
// recovered by simply keying attaches by request id instead of model
// id, which makes every attach a fresh pin.
//
// Two PR 5 extensions make the pins placement- and timing-aware:
//   - FILL BARRIER: a fresh pin starts UNFILLED — its bytes are only on
//     chip once the owner's fill chunk retires (mark_filled). A rider
//     whose chunk dispatches before that must re-fetch the not-yet-
//     landed groups; the engine checks filled() at submit time and
//     accounts the re-fetch (ServingResult::rider_refetch_bytes),
//     bounding PR 4's fill-timing optimism.
//   - KEEP-WARM / EVICT-IDLE: detach(key, keep_resident = true) keeps a
//     pin's bytes resident after its refcount hits zero (an IDLE pin) so
//     the model's next request attaches warm (warm_attaches) with no
//     fill fetch and no barrier. Idle pins are reclaimed explicitly
//     (evict_idle / evict_all_idle, idle_evictions counter) — which
//     models to keep warm or evict is a PlacementPolicy decision, not
//     the tracker's.
//
// The natural budget unit is the CC-side TCDM of the chip
// (chip_weight_residency_capacity below, from
// ChipConfig::cc_cluster_tcdm_bytes). As with the KV tracker, the
// Fig. 10 chip's physical scratchpad (512 KiB total) is far below one
// LLM layer group, so meaningful budgets are expressed as an
// oversubscription multiple of it — the tracker then models the
// near-memory / enlarged-scratchpad design point the related work
// targets, not the taped-out SRAM.
#ifndef EDGEMM_SERVE_RESIDENCY_TRACKER_HPP
#define EDGEMM_SERVE_RESIDENCY_TRACKER_HPP

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "core/config.hpp"
#include "model/mllm_config.hpp"
#include "serve/byte_ledger.hpp"
#include "serve/request.hpp"

namespace edgemm::serve {

/// Sanity ceiling on the residency oversubscription a serving engine
/// accepts: budgets above kMaxWeightResidencyOversubscription x the
/// physical CC TCDM are rejected at engine construction (they would
/// model a "scratchpad" larger than any near-memory design point and
/// usually indicate a bytes-vs-MiB unit slip).
inline constexpr double kMaxWeightResidencyOversubscription = 65536.0;

/// CC-side weight-residency budget of `config`: oversubscription x total
/// CC clusters x per-cluster TCDM bytes. Throws std::invalid_argument
/// for a non-positive oversubscription.
Bytes chip_weight_residency_capacity(const core::ChipConfig& config,
                                     double oversubscription = 1.0);

/// Bytes of ONE of `model`'s LLM layer groups as fetched on the CC lane
/// — the granularity pins are carved at and the unit residency budgets
/// should be sized in (model::llm_layer_weight_elems x the CC weight
/// element size).
Bytes llm_layer_group_bytes(const model::MllmConfig& model,
                            const core::ChipConfig& config);

/// Key a weight pin is held under. The serving engine uses the MODEL
/// index in shared mode — every in-flight request of a model attaches
/// to one refcounted pin — and the request id in the legacy per-request
/// mode, where keys are unique so every attach charges a fresh pin. A
/// key must stay on one API: either the refcounted attach/detach pair
/// or the low-level try_pin/release pair, never both.
using PinKey = std::uint64_t;

/// Pin/release ledger over a fixed byte capacity (a ByteLedger plus the
/// pin/fallback/peak counters and a refcount per pin). The tracker
/// never overcommits and never blocks — a pin that does not fit fails
/// immediately (the caller falls back to re-fetching weights).
class WeightResidencyTracker {
 public:
  /// Outcome of one attach_layers call.
  struct AttachResult {
    /// Layer groups resident under the pin the caller attached to
    /// (0 = no pin: the budget could not fit a single group).
    std::size_t layers = 0;
    /// True when the attach rode an EXISTING pin: the bytes were already
    /// charged by an earlier attach, so the caller's next chunk can skip
    /// the pinned layers' weight DMA immediately (no fill fetch needed —
    /// though an unfilled pin's rider still re-fetches until the fill
    /// lands when the engine enforces the fill barrier).
    bool shared = false;
    /// True when the attach revived an IDLE pin (refcount was zero but
    /// the bytes were kept resident by a keep-warm detach): the weights
    /// are on chip AND filled, so every chunk rides barrier-free.
    bool warm = false;
  };

  /// Throws std::invalid_argument for a zero capacity.
  explicit WeightResidencyTracker(Bytes capacity);

  Bytes capacity() const { return ledger_.capacity(); }
  Bytes pinned() const { return ledger_.held(); }
  Bytes available() const { return ledger_.available(); }
  std::size_t holders() const { return ledger_.holders(); }
  /// Successful pin acquisitions so far.
  std::size_t pins() const { return pins_; }
  /// Failed acquisitions so far (each one is a chunk tail that keeps
  /// re-fetching weights instead of riding a pin).
  std::size_t fallbacks() const { return fallbacks_; }
  /// Attaches that rode an existing LIVE pin (refcount > 0) instead of
  /// charging the budget (the multi-tenant win: every one is a whole
  /// prefill's weight DMA shared instead of duplicated).
  std::size_t shared_attaches() const { return shared_attaches_; }
  /// Attaches that revived an idle (kept-warm) pin: refcount 0 -> 1 with
  /// the bytes already resident and filled.
  std::size_t warm_attaches() const { return warm_attaches_; }
  /// Idle pins reclaimed via evict_idle (placement-policy evictions;
  /// excludes the end-of-replay evict_all_idle flush).
  std::size_t idle_evictions() const { return idle_evictions_; }
  /// High-water mark of simultaneously pinned bytes.
  Bytes peak_pinned() const { return peak_pinned_; }
  /// Pins currently resident with a zero refcount (kept warm).
  std::size_t idle_pins() const;
  /// Bytes held by idle pins — reclaimable without touching any live pin.
  Bytes idle_pinned_bytes() const;

  /// Refcounted attach under `key`. If `key` already holds a pin, the
  /// refcount is incremented and the existing pin is returned with
  /// `shared = true` — no bytes charged, no fetch needed. Otherwise pins
  /// as many whole layer groups of `bytes_per_layer` as fit, up to
  /// `max_layers` (partial residency is the point: a budget worth three
  /// layer groups still saves three layers' worth of re-fetches per
  /// chunk); a budget that cannot fit one group returns layers = 0, is
  /// counted as a fallback and holds NOTHING (detach would throw).
  /// Throws std::invalid_argument for zero bytes_per_layer or
  /// max_layers.
  AttachResult attach_layers(PinKey key, Bytes bytes_per_layer,
                             std::size_t max_layers);

  /// Detaches one holder from `key`'s pin. When the refcount reaches
  /// zero the bytes are released (evicted) — unless `keep_resident` is
  /// true, in which case the pin stays on chip as an IDLE pin (zero
  /// refcount, bytes still charged, fill state preserved) for the next
  /// same-key attach to revive warm. Throws std::logic_error when `key`
  /// holds no attached pin.
  void detach(PinKey key, bool keep_resident = false);

  /// Marks `key`'s pin as filled: its owner's fill fetch has retired and
  /// the bytes are genuinely on chip, so riders stop re-fetching (all
  /// layers count as landed). Throws std::logic_error when `key` holds
  /// no pin.
  void mark_filled(PinKey key);

  /// True when `key`'s pin exists and its fill has landed. False for an
  /// unfilled pin AND for no pin at all (nothing to ride either way).
  bool filled(PinKey key) const;

  /// Per-group fill landing: records that the pin's first `up_to` layer
  /// groups are genuinely on chip (a chunk that fetched them retired —
  /// the owner's fill chunk or a rider's own re-fetch, whichever lands
  /// first). Landing is monotone (up_to below the current mark is a
  /// no-op) and clamped to the pin's layer count; landing every group
  /// marks the pin filled. Throws std::logic_error when `key` holds no
  /// pin.
  void mark_landed(PinKey key, std::size_t up_to);

  /// Layer groups of `key`'s pin whose fill has landed (0 = no pin; a
  /// filled pin reports its full layer count). Riders under the
  /// per-group fill barrier re-fetch only the groups above this mark.
  std::size_t landed_layers(PinKey key) const;

  /// Evicts `key`'s IDLE pin (refcount zero, kept warm): the bytes are
  /// released and idle_evictions is counted. Throws std::logic_error
  /// when `key` holds no pin or the pin still has holders.
  void evict_idle(PinKey key);

  /// Evicts every idle pin (end-of-replay flush); returns the count.
  /// NOT counted in idle_evictions — it is bookkeeping, not placement.
  std::size_t evict_all_idle();

  /// Requests currently attached to `key`'s pin (0 = no pin — note an
  /// idle kept-warm pin also reports 0; see resident_layers).
  std::size_t refcount(PinKey key) const;
  /// Layer groups resident under `key`'s pin, idle pins included
  /// (0 = no pin).
  std::size_t resident_layers(PinKey key) const;

  // --- Low-level non-refcounted core (attach_layers builds on these) ----
  /// Pins `bytes` for `id`. Filling the budget to exactly capacity
  /// succeeds; one byte over fails (and counts a fallback). Throws
  /// std::logic_error when `id` already holds a pin.
  bool try_pin(RequestId id, Bytes bytes);

  /// Pins as many whole layer groups of `bytes_per_layer` as fit, up to
  /// `max_layers`; returns the number pinned (0 = fallback, counted).
  /// Throws std::invalid_argument for zero bytes_per_layer or max_layers.
  std::size_t try_pin_layers(RequestId id, Bytes bytes_per_layer,
                             std::size_t max_layers);

  /// Releases `id`'s pin; throws std::logic_error if absent.
  void release(RequestId id);

 private:
  /// One refcounted pin (attach_layers/detach bookkeeping on top of the
  /// ledger entry held under the same key). refs == 0 with the entry
  /// still present = an idle kept-warm pin.
  struct Pin {
    std::size_t layers = 0;
    std::size_t refs = 0;
    /// False until the owner's fill fetch retires (mark_filled); riders
    /// of an unfilled pin re-fetch under the engine's fill barrier.
    bool filled = false;
    /// Layer groups already landed (mark_landed); layers once filled.
    std::size_t landed = 0;
  };

  ByteLedger ledger_;
  std::unordered_map<PinKey, Pin> pins_by_key_;
  Bytes peak_pinned_ = 0;
  std::size_t pins_ = 0;
  std::size_t fallbacks_ = 0;
  std::size_t shared_attaches_ = 0;
  std::size_t warm_attaches_ = 0;
  std::size_t idle_evictions_ = 0;
};

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_RESIDENCY_TRACKER_HPP
