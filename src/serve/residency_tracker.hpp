// Weight-residency accounting for chunked prefill (the ROADMAP item
// "weight-resident chunk chaining").
//
// PR 2's ChunkedPrefill is honest about its cost: every chunk re-fetches
// the full layer weights, multiplying CC weight traffic by the chunk
// count. EdgeMM's premise — and the reason CHIME / SLIM push weights
// toward near-memory or scratchpad residency — is that edge DRAM
// bandwidth is the scarce resource, so a layer group pinned on-chip
// across consecutive chunks of the SAME request recovers most of the
// monolithic-prefill traffic while keeping chunking's interactivity.
//
// This tracker is the byte ledger behind that: a request acquires a pin
// covering as many whole layer groups as fit the remaining budget when
// its first chunk fetches them; later chunks mark those layers'
// weight ops `weights_resident` (zero weight DMA, see
// core::GemmWork::weights_resident) and the pin is released when the
// request's prefill retires. A competing pin that would overflow the
// budget is NEVER allowed to stall the lane: the acquisition fails, the
// request simply keeps re-fetching (the PR 2 behavior), and the failure
// is counted as a fallback.
//
// The natural budget unit is the CC-side TCDM of the chip
// (chip_weight_residency_capacity below, from
// ChipConfig::cc_cluster_tcdm_bytes). As with the KV tracker, the
// Fig. 10 chip's physical scratchpad (512 KiB total) is far below one
// LLM layer group, so meaningful budgets are expressed as an
// oversubscription multiple of it — the tracker then models the
// near-memory / enlarged-scratchpad design point the related work
// targets, not the taped-out SRAM.
#ifndef EDGEMM_SERVE_RESIDENCY_TRACKER_HPP
#define EDGEMM_SERVE_RESIDENCY_TRACKER_HPP

#include <cstddef>

#include "core/config.hpp"
#include "model/mllm_config.hpp"
#include "serve/byte_ledger.hpp"
#include "serve/request.hpp"

namespace edgemm::serve {

/// Sanity ceiling on the residency oversubscription a serving engine
/// accepts: budgets above kMaxWeightResidencyOversubscription x the
/// physical CC TCDM are rejected at engine construction (they would
/// model a "scratchpad" larger than any near-memory design point and
/// usually indicate a bytes-vs-MiB unit slip).
inline constexpr double kMaxWeightResidencyOversubscription = 65536.0;

/// CC-side weight-residency budget of `config`: oversubscription x total
/// CC clusters x per-cluster TCDM bytes. Throws std::invalid_argument
/// for a non-positive oversubscription.
Bytes chip_weight_residency_capacity(const core::ChipConfig& config,
                                     double oversubscription = 1.0);

/// Bytes of ONE of `model`'s LLM layer groups as fetched on the CC lane
/// — the granularity pins are carved at and the unit residency budgets
/// should be sized in (model::llm_layer_weight_elems x the CC weight
/// element size).
Bytes llm_layer_group_bytes(const model::MllmConfig& model,
                            const core::ChipConfig& config);

/// Pin/release ledger over a fixed byte capacity (a ByteLedger plus the
/// pin/fallback/peak counters). Pins are keyed by request id; the
/// tracker never overcommits and never blocks — a pin that does not fit
/// fails immediately (the caller falls back to re-fetching weights).
class WeightResidencyTracker {
 public:
  /// Throws std::invalid_argument for a zero capacity.
  explicit WeightResidencyTracker(Bytes capacity);

  Bytes capacity() const { return ledger_.capacity(); }
  Bytes pinned() const { return ledger_.held(); }
  Bytes available() const { return ledger_.available(); }
  std::size_t holders() const { return ledger_.holders(); }
  /// Successful pin acquisitions so far.
  std::size_t pins() const { return pins_; }
  /// Failed acquisitions so far (each one is a chunk tail that keeps
  /// re-fetching weights instead of riding a pin).
  std::size_t fallbacks() const { return fallbacks_; }
  /// High-water mark of simultaneously pinned bytes.
  Bytes peak_pinned() const { return peak_pinned_; }

  /// Pins `bytes` for `id`. Filling the budget to exactly capacity
  /// succeeds; one byte over fails (and counts a fallback). Throws
  /// std::logic_error when `id` already holds a pin.
  bool try_pin(RequestId id, Bytes bytes);

  /// Pins as many whole layer groups of `bytes_per_layer` as fit, up to
  /// `max_layers`; returns the number pinned (0 = fallback, counted).
  /// Partial residency is the point: a budget worth three layer groups
  /// still saves three layers' worth of re-fetches per chunk. Throws
  /// std::invalid_argument for zero bytes_per_layer or max_layers.
  std::size_t try_pin_layers(RequestId id, Bytes bytes_per_layer,
                             std::size_t max_layers);

  /// Releases `id`'s pin (eviction on prefill completion); throws
  /// std::logic_error if absent.
  void release(RequestId id);

 private:
  ByteLedger ledger_;
  Bytes peak_pinned_ = 0;
  std::size_t pins_ = 0;
  std::size_t fallbacks_ = 0;
};

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_RESIDENCY_TRACKER_HPP
