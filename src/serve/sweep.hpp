// Thread-parallel sweep harness over independent one-shot replays.
//
// A sweep is a grid of SweepCases — (chip, models, engine config, trace)
// tuples — each priced by its own ServingEngine via replay_trace's
// one-run contract. Cases share NOTHING (every engine owns a fresh chip
// and simulator), so they parallelize embarrassingly: a worker pool
// drains case indices from a bounded ring buffer (the classic
// mt_circular_queue shape) and deposits each outcome at its case's slot
// in a pre-sized result vector. Result ORDER therefore never depends on
// thread scheduling: run_sweep with 8 workers returns byte-identical
// outcomes, in identical order, to workers = 1 — the property the bench
// and tests/serve/test_sweep.cpp gate on.
#ifndef EDGEMM_SERVE_SWEEP_HPP
#define EDGEMM_SERVE_SWEEP_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "model/mllm_config.hpp"
#include "serve/engine_config.hpp"
#include "serve/serving_engine.hpp"
#include "serve/trace.hpp"

namespace edgemm::serve {

/// One grid point: everything one replay_trace call needs, plus a label
/// naming the point in reports ("fifo", "budget=2", ...).
struct SweepCase {
  std::string label;
  core::ChipConfig chip;
  std::vector<model::MllmConfig> models;
  EngineConfig engine;
  std::vector<Request> requests;
};

struct SweepOptions {
  /// Worker threads. 0 and 1 both run every case inline on the calling
  /// thread (no pool); n > 1 spawns n workers.
  std::size_t workers = 1;
};

/// One case's outcome, deposited at the case's index.
struct SweepOutcome {
  std::string label;
  ServingResult result;
  std::vector<RequestRecord> records;
  /// Host wall-clock spent replaying this case (measurement only — NOT
  /// part of outcome identity; see outcomes_identical).
  double wall_ms = 0.0;
};

/// Replays every case and returns outcomes in case order (index i of the
/// result is cases[i], regardless of which worker priced it or when).
/// A case that throws is rethrown on the calling thread after the pool
/// drains, lowest case index first. Throws std::invalid_argument for an
/// empty case list.
std::vector<SweepOutcome> run_sweep(const std::vector<SweepCase>& cases,
                                    const SweepOptions& options = {});

/// Field-by-field equality of two replay results (exact, including the
/// floating-point metrics: identical replays produce identical bits).
bool results_identical(const ServingResult& a, const ServingResult& b);

/// Field-by-field equality of two request records (request identity,
/// every replay timestamp, and the terminal flags — exact).
bool record_identical(const RequestRecord& a, const RequestRecord& b);

/// Outcome equality: label, result and every request record — everything
/// except wall_ms, which measures the host, not the simulation.
bool outcomes_identical(const SweepOutcome& a, const SweepOutcome& b);

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_SWEEP_HPP
