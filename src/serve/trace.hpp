// Deterministic synthetic request traces (Poisson arrivals).
#ifndef EDGEMM_SERVE_TRACE_HPP
#define EDGEMM_SERVE_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "serve/request.hpp"

namespace edgemm::serve {

/// Parameters of a synthetic trace. Identical configs (seed included)
/// regenerate identical traces, so every bench/test replay is exact.
struct TraceConfig {
  std::size_t requests = 32;
  /// Poisson arrival rate in requests per second of simulated time.
  double arrival_rate_per_s = 8.0;
  double clock_hz = kChipClockHz;
  std::size_t model = 0;
  /// Multi-model zoo mix: when non-empty, each request's model index is
  /// drawn from this weight vector (index = model, weight proportional
  /// to traffic share; weights need not sum to 1) and `model` above is
  /// ignored. Empty (default) keeps every request on `model`, and the
  /// generated trace is byte-identical to the pre-zoo generator.
  std::vector<double> model_weights{};
  std::size_t input_tokens = 300;
  std::size_t crops = 1;
  /// Output lengths drawn uniformly from [min, max] (inclusive).
  std::size_t min_output_tokens = 32;
  std::size_t max_output_tokens = 256;
  /// Requests per burst: 1 = pure Poisson; b > 1 lands b requests on
  /// every arrival draw (a compound-Poisson bursty load) while the
  /// overall request rate stays arrival_rate_per_s.
  std::size_t burst = 1;
  /// Per-request SLO deadline: arrival + slo_base_ms +
  /// slo_per_token_ms * output_tokens. base <= 0 disables deadlines.
  double slo_base_ms = 0.0;
  double slo_per_token_ms = 0.0;
  /// Shared-prefix conversation groups (multi-turn serving): when > 0,
  /// each request draws its Request::prefix_id uniformly from
  /// [1, prefix_groups] — the turns of one conversation share a
  /// system/image prompt of prefix_tokens tokens, which the paged KV
  /// allocator CoW-shares. 0 (default) consumes no randomness and keeps
  /// old traces byte-identical.
  std::size_t prefix_groups = 0;
  /// Shared-prefix length; must be in (0, input_tokens] when
  /// prefix_groups > 0 (ignored otherwise).
  std::size_t prefix_tokens = 0;
  std::uint64_t seed = 42;
};

/// Generates `config.requests` requests with exponential inter-arrival
/// times (a Poisson process over bursts of `burst` requests), uniform
/// output lengths, and optional SLO deadlines, ids 0..n-1 in arrival
/// order. With burst = 1 and deadlines off, a given seed reproduces the
/// PR-1 traces exactly. Throws std::invalid_argument for a non-positive
/// rate, zero request/token/burst counts, min > max output tokens, a
/// negative per-token SLO, or a model_weights vector with a negative
/// entry or a non-positive sum.
std::vector<Request> poisson_trace(const TraceConfig& config);

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_TRACE_HPP
