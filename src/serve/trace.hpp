// Deterministic synthetic request traces (Poisson arrivals).
#ifndef EDGEMM_SERVE_TRACE_HPP
#define EDGEMM_SERVE_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "serve/request.hpp"

namespace edgemm::serve {

/// Parameters of a synthetic trace. Identical configs (seed included)
/// regenerate identical traces, so every bench/test replay is exact.
struct TraceConfig {
  std::size_t requests = 32;
  /// Poisson arrival rate in requests per second of simulated time.
  double arrival_rate_per_s = 8.0;
  double clock_hz = kChipClockHz;
  std::size_t model = 0;
  std::size_t input_tokens = 300;
  std::size_t crops = 1;
  /// Output lengths drawn uniformly from [min, max] (inclusive).
  std::size_t min_output_tokens = 32;
  std::size_t max_output_tokens = 256;
  std::uint64_t seed = 42;
};

/// Generates `config.requests` requests with exponential inter-arrival
/// times (a Poisson process) and uniform output lengths, ids 0..n-1 in
/// arrival order. Throws std::invalid_argument for a non-positive rate,
/// zero request/token counts, or min > max output tokens.
std::vector<Request> poisson_trace(const TraceConfig& config);

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_TRACE_HPP
