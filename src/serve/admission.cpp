#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edgemm::serve {

ConcurrencyPolicy::ConcurrencyPolicy(AdmissionLimits limits) : limits_(limits) {
  if (limits_.max_decode_batch == 0 || limits_.max_inflight == 0) {
    throw std::invalid_argument("ConcurrencyPolicy: limits must be > 0");
  }
  if (limits_.max_inflight < limits_.max_decode_batch) {
    throw std::invalid_argument(
        "ConcurrencyPolicy: max_inflight must be >= max_decode_batch");
  }
}

AdmissionVerdict ConcurrencyPolicy::admit(const Request&,
                                          const AdmissionContext& ctx) const {
  return ctx.inflight < limits_.max_inflight ? AdmissionVerdict::kAdmit
                                             : AdmissionVerdict::kDefer;
}

std::size_t ConcurrencyPolicy::decode_join_count(std::size_t active,
                                                 std::size_t ready) const {
  if (active >= limits_.max_decode_batch) return 0;
  return std::min(ready, limits_.max_decode_batch - active);
}

SloAwarePolicy::SloAwarePolicy(AdmissionLimits limits)
    : SloAwarePolicy(limits, Options{}) {}

SloAwarePolicy::SloAwarePolicy(AdmissionLimits limits, Options options)
    : ConcurrencyPolicy(limits), options_(options) {
  if (!(options_.slack > 0.0)) {
    throw std::invalid_argument("SloAwarePolicy: slack must be > 0");
  }
}

AdmissionVerdict SloAwarePolicy::admit(const Request& r,
                                       const AdmissionContext& ctx) const {
  if (r.deadline > 0) {
    const double wait = static_cast<double>(ctx.estimated_queue_delay) +
                        static_cast<double>(ctx.estimated_service);
    const double finish =
        static_cast<double>(ctx.now) + options_.slack * wait;
    if (finish > static_cast<double>(r.deadline)) {
      return AdmissionVerdict::kReject;
    }
  }
  return ConcurrencyPolicy::admit(r, ctx);
}

}  // namespace edgemm::serve
