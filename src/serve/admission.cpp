#include "serve/admission.hpp"

#include <algorithm>
#include <stdexcept>

namespace edgemm::serve {

AdmissionPolicy::AdmissionPolicy(AdmissionLimits limits) : limits_(limits) {
  if (limits_.max_decode_batch == 0 || limits_.max_inflight == 0) {
    throw std::invalid_argument("AdmissionPolicy: limits must be > 0");
  }
  if (limits_.max_inflight < limits_.max_decode_batch) {
    throw std::invalid_argument(
        "AdmissionPolicy: max_inflight must be >= max_decode_batch");
  }
}

std::size_t AdmissionPolicy::decode_join_count(std::size_t active,
                                               std::size_t ready) const {
  if (active >= limits_.max_decode_batch) return 0;
  return std::min(ready, limits_.max_decode_batch - active);
}

}  // namespace edgemm::serve
