#include "serve/engine_config.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "model/activation_gen.hpp"

namespace edgemm::serve {

namespace {

/// FNV-1a over the model name: a stable per-model seed perturbation so
/// different zoo entries draw different proxy instances.
std::uint64_t name_hash(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

double derive_keep_fraction(const model::MllmConfig& model,
                            const TaskProxyPruningOptions& options) {
  if (options.min_agreement < 0.0 || options.min_agreement > 1.0) {
    throw std::invalid_argument(
        "derive_keep_fraction: min_agreement must be in [0, 1]");
  }
  if (!(options.min_keep_fraction > 0.0) || options.min_keep_fraction > 1.0) {
    throw std::invalid_argument(
        "derive_keep_fraction: min_keep_fraction must be in (0, 1]");
  }
  if (options.max_proxy_channels == 0 || options.max_proxy_layers == 0) {
    throw std::invalid_argument(
        "derive_keep_fraction: proxy caps must be > 0");
  }

  model::ActivationProfile profile;
  profile.channels = std::min(model.llm.d_model, options.max_proxy_channels);
  profile.layers = std::max<std::size_t>(
      std::min(model.llm.layers, options.max_proxy_layers), 2);
  const model::ActivationGenerator gen(
      profile, options.proxy.seed ^ name_hash(model.name));
  const pruning::TaskProxyResult result =
      pruning::evaluate_task_proxy(gen, options.proxy);

  double keep = 1.0;  // pruning off unless the proxy clears the bar
  if (result.agreement_dynamic >= options.min_agreement) {
    keep = 1.0 - result.mean_pruning_ratio;
  } else {
    // Fall back to the most aggressive fixed ratio that still agrees.
    double best_ratio = 0.0;
    for (std::size_t f = 0; f < options.proxy.fixed_ratios.size(); ++f) {
      if (result.agreement_fixed[f] >= options.min_agreement) {
        best_ratio = std::max(best_ratio, options.proxy.fixed_ratios[f]);
      }
    }
    keep = 1.0 - best_ratio;
  }
  return std::clamp(keep, options.min_keep_fraction, 1.0);
}

double quality_accuracy_proxy(const model::MllmConfig& model,
                              double keep_fraction,
                              const TaskProxyPruningOptions& options) {
  if (!(keep_fraction > 0.0)) {
    throw std::invalid_argument(
        "quality_accuracy_proxy: keep_fraction must be positive");
  }
  if (keep_fraction >= 1.0) return 1.0;  // no pruning, agreement exact
  if (options.max_proxy_channels == 0 || options.max_proxy_layers == 0) {
    throw std::invalid_argument(
        "quality_accuracy_proxy: proxy caps must be > 0");
  }

  // Same capped profile and per-model seed as derive_keep_fraction, so
  // the static derivation and the quality ledger price the same proxy.
  model::ActivationProfile profile;
  profile.channels = std::min(model.llm.d_model, options.max_proxy_channels);
  profile.layers = std::max<std::size_t>(
      std::min(model.llm.layers, options.max_proxy_layers), 2);
  const model::ActivationGenerator gen(
      profile, options.proxy.seed ^ name_hash(model.name));
  pruning::TaskProxyConfig proxy = options.proxy;
  proxy.fixed_ratios = {1.0 - keep_fraction};
  const pruning::TaskProxyResult result =
      pruning::evaluate_task_proxy(gen, proxy);
  return result.agreement_fixed[0];
}

EngineConfig::EngineConfig()
    : scheduler_(std::make_shared<ConcurrencyPolicy>(AdmissionLimits{})),
      planner_(std::make_shared<MonolithicPrefill>()),
      batcher_(std::make_shared<FifoBatch>()),
      placement_(std::make_shared<KeepCurrentPlacement>()),
      swap_policy_(std::make_shared<LruSwapPolicy>()),
      offload_(std::make_shared<NoOffload>()),
      quality_(std::make_shared<StaticQuality>()) {}

EngineConfig EngineConfig::from_legacy(const ServingOptions& options) {
  EngineConfig config;
  config.scheduler(std::make_shared<ConcurrencyPolicy>(options.admission))
      .manage_bandwidth(options.manage_bandwidth)
      .bandwidth_policy(options.policy)
      .rebalance_interval(options.rebalance_interval)
      .prune_keep_fraction(options.prune_keep_fraction);
  return config;
}

EngineConfig& EngineConfig::scheduler(
    std::shared_ptr<const SchedulerPolicy> policy) {
  if (!policy) {
    throw std::invalid_argument("EngineConfig: null SchedulerPolicy");
  }
  scheduler_ = std::move(policy);
  return *this;
}

EngineConfig& EngineConfig::prefill_planner(
    std::shared_ptr<const PrefillPlanner> planner) {
  if (!planner) {
    throw std::invalid_argument("EngineConfig: null PrefillPlanner");
  }
  planner_ = std::move(planner);
  return *this;
}

EngineConfig& EngineConfig::batch_policy(
    std::shared_ptr<const BatchPolicy> policy) {
  if (!policy) {
    throw std::invalid_argument("EngineConfig: null BatchPolicy");
  }
  batcher_ = std::move(policy);
  return *this;
}

EngineConfig& EngineConfig::manage_bandwidth(bool enabled) {
  manage_bandwidth_ = enabled;
  return *this;
}

EngineConfig& EngineConfig::bandwidth_policy(
    const core::BandwidthPolicy& policy) {
  bandwidth_ = policy;
  return *this;
}

EngineConfig& EngineConfig::rebalance_interval(Cycle interval) {
  rebalance_interval_ = interval;
  return *this;
}

EngineConfig& EngineConfig::prune_keep_fraction(double fraction) {
  if (!(fraction > 0.0) || fraction > 1.0) {
    throw std::invalid_argument(
        "EngineConfig: prune_keep_fraction must be in (0, 1]");
  }
  prune_keep_fraction_ = fraction;
  return *this;
}

EngineConfig& EngineConfig::task_proxy_pruning(TaskProxyPruningOptions options) {
  if (options.min_agreement < 0.0 || options.min_agreement > 1.0) {
    throw std::invalid_argument(
        "EngineConfig: task-proxy min_agreement must be in [0, 1]");
  }
  if (!(options.min_keep_fraction > 0.0) || options.min_keep_fraction > 1.0) {
    throw std::invalid_argument(
        "EngineConfig: task-proxy min_keep_fraction must be in (0, 1]");
  }
  task_proxy_ = std::move(options);
  return *this;
}

EngineConfig& EngineConfig::kv_capacity_bytes(Bytes bytes) {
  kv_capacity_bytes_ = bytes;
  return *this;
}

EngineConfig& EngineConfig::paged_kv(bool enabled) {
  paged_kv_ = enabled;
  return *this;
}

EngineConfig& EngineConfig::kv_page_bytes(Bytes bytes) {
  if (bytes == 0) {
    throw std::invalid_argument("EngineConfig: kv_page_bytes must be > 0");
  }
  kv_page_bytes_ = bytes;
  return *this;
}

EngineConfig& EngineConfig::kv_prefix_sharing(bool enabled) {
  kv_prefix_sharing_ = enabled;
  return *this;
}

EngineConfig& EngineConfig::kv_swap_policy(
    std::shared_ptr<const SwapPolicy> policy) {
  if (!policy) {
    throw std::invalid_argument("EngineConfig: null SwapPolicy");
  }
  swap_policy_ = std::move(policy);
  return *this;
}

EngineConfig& EngineConfig::weight_residency_bytes(Bytes bytes) {
  weight_residency_bytes_ = bytes;
  return *this;
}

EngineConfig& EngineConfig::share_weight_pins(bool enabled) {
  share_weight_pins_ = enabled;
  return *this;
}

EngineConfig& EngineConfig::placement_policy(
    std::shared_ptr<const PlacementPolicy> policy) {
  if (!policy) {
    throw std::invalid_argument("EngineConfig: null PlacementPolicy");
  }
  placement_ = std::move(policy);
  return *this;
}

EngineConfig& EngineConfig::rider_fill_barrier(bool enabled) {
  rider_fill_barrier_ = enabled;
  return *this;
}

EngineConfig& EngineConfig::replay_mode(core::ReplayMode mode) {
  replay_mode_ = mode;
  return *this;
}

EngineConfig& EngineConfig::deadline_ordered_queue(bool enabled) {
  deadline_ordered_queue_ = enabled;
  return *this;
}

EngineConfig& EngineConfig::lane_chain_limit(std::size_t limit) {
  lane_chain_limit_ = limit;
  return *this;
}

EngineConfig& EngineConfig::phase(EnginePhase phase) {
  phase_ = phase;
  return *this;
}

EngineConfig& EngineConfig::per_group_fill_landing(bool enabled) {
  per_group_fill_landing_ = enabled;
  return *this;
}

EngineConfig& EngineConfig::demand_decay_tau_s(double seconds) {
  if (!(seconds > 0.0)) {
    throw std::invalid_argument(
        "EngineConfig: demand_decay_tau_s must be positive");
  }
  demand_decay_tau_s_ = seconds;
  return *this;
}

EngineConfig& EngineConfig::fat_backend(const baselines::GpuSpec& spec) {
  spec.validate();  // eager, so the error names the bad field here
  fat_backend_ = spec;
  return *this;
}

EngineConfig& EngineConfig::offload_policy(
    std::shared_ptr<const OffloadPolicy> policy) {
  if (!policy) {
    throw std::invalid_argument("EngineConfig: null OffloadPolicy");
  }
  offload_ = std::move(policy);
  return *this;
}

EngineConfig& EngineConfig::kv_swap_refill_dma(bool enabled) {
  kv_swap_refill_dma_ = enabled;
  return *this;
}

EngineConfig& EngineConfig::quality_policy(
    std::shared_ptr<const QualityPolicy> policy) {
  if (!policy) {
    throw std::invalid_argument("EngineConfig: null QualityPolicy");
  }
  quality_ = std::move(policy);
  return *this;
}

EngineConfig& EngineConfig::quality_band(double min_keep, double max_keep) {
  if (!(min_keep > 0.0) || min_keep > max_keep || max_keep > 1.0) {
    throw std::invalid_argument(
        "EngineConfig: quality_band needs 0 < min_keep <= max_keep <= 1");
  }
  quality_min_keep_ = min_keep;
  quality_max_keep_ = max_keep;
  return *this;
}

void EngineConfig::validate() const {
  if (!scheduler_ || !planner_ || !batcher_ || !placement_ || !swap_policy_ ||
      !quality_) {
    throw std::invalid_argument("EngineConfig: missing policy");
  }
  if (!(quality_min_keep_ > 0.0) || quality_min_keep_ > quality_max_keep_ ||
      quality_max_keep_ > 1.0) {
    throw std::invalid_argument(
        "EngineConfig: quality band needs 0 < min_keep <= max_keep <= 1");
  }
  if (paged_kv_ && kv_capacity_bytes_ > 0 &&
      kv_capacity_bytes_ < kv_page_bytes_) {
    throw std::invalid_argument(
        "EngineConfig: the KV budget must hold at least one kv_page_bytes "
        "page under paged_kv");
  }
  if (!(prune_keep_fraction_ > 0.0) || prune_keep_fraction_ > 1.0) {
    throw std::invalid_argument(
        "EngineConfig: prune_keep_fraction must be in (0, 1]");
  }
  if (weight_residency_bytes_ > 0 && !planner_->chains_weight_residency()) {
    throw std::invalid_argument(
        "EngineConfig: weight_residency_bytes set but the PrefillPlanner "
        "does not chain weight residency (use ResidentChunkedPrefill)");
  }
  if (!fat_backend_ && !dynamic_cast<const NoOffload*>(offload_.get())) {
    throw std::invalid_argument(
        "EngineConfig: an offloading OffloadPolicy needs a fat_backend to "
        "route chunks to (set fat_backend or keep NoOffload)");
  }
  if (fat_backend_) {
    fat_backend_->validate();
  }
}

}  // namespace edgemm::serve
