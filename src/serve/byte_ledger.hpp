// Reserve/release byte ledger keyed by request id — the shared core of
// KvCapacityTracker (decode-batch KV reservations) and
// WeightResidencyTracker (prefill weight pins). One place owns the
// overcommit, duplicate-hold and unknown-release invariants; the
// trackers add their domain counters (deferrals / fallbacks, peak) on
// top.
#ifndef EDGEMM_SERVE_BYTE_LEDGER_HPP
#define EDGEMM_SERVE_BYTE_LEDGER_HPP

#include <cstddef>
#include <unordered_map>

#include "common/types.hpp"
#include "serve/request.hpp"

namespace edgemm::serve {

/// Fixed-capacity byte ledger. Never overcommits and never blocks:
/// filling to exactly capacity succeeds, one byte over fails.
class ByteLedger {
 public:
  /// Throws std::invalid_argument for a zero capacity; `what` names the
  /// owning tracker in error messages.
  ByteLedger(Bytes capacity, const char* what);

  Bytes capacity() const { return capacity_; }
  Bytes held() const { return held_bytes_; }
  Bytes available() const { return capacity_ - held_bytes_; }
  std::size_t holders() const { return held_.size(); }

  /// Bytes held under `id` (0 when `id` holds nothing).
  Bytes held_by(RequestId id) const;

  /// Acquires `bytes` for `id`; false when it does not fit. Throws
  /// std::logic_error when `id` already holds an acquisition.
  bool try_acquire(RequestId id, Bytes bytes);

  /// Releases `id`'s acquisition; throws std::logic_error if absent.
  void release(RequestId id);

 private:
  Bytes capacity_;
  Bytes held_bytes_ = 0;
  const char* what_;
  std::unordered_map<RequestId, Bytes> held_;
};

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_BYTE_LEDGER_HPP
