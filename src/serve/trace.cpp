#include "serve/trace.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace edgemm::serve {

std::vector<Request> poisson_trace(const TraceConfig& config) {
  if (config.requests == 0) {
    throw std::invalid_argument("poisson_trace: requests must be > 0");
  }
  if (config.arrival_rate_per_s <= 0.0 || config.clock_hz <= 0.0) {
    throw std::invalid_argument("poisson_trace: rate and clock must be > 0");
  }
  if (config.min_output_tokens == 0 ||
      config.min_output_tokens > config.max_output_tokens) {
    throw std::invalid_argument(
        "poisson_trace: need 0 < min_output_tokens <= max_output_tokens");
  }
  if (config.input_tokens == 0 || config.crops == 0) {
    throw std::invalid_argument("poisson_trace: input_tokens/crops must be > 0");
  }
  if (config.burst == 0) {
    throw std::invalid_argument("poisson_trace: burst must be > 0");
  }
  if (config.slo_per_token_ms < 0.0) {
    throw std::invalid_argument("poisson_trace: slo_per_token_ms must be >= 0");
  }
  double weight_sum = 0.0;
  for (const double w : config.model_weights) {
    if (w < 0.0) {
      throw std::invalid_argument(
          "poisson_trace: model_weights must be non-negative");
    }
    weight_sum += w;
  }
  if (!config.model_weights.empty() && weight_sum <= 0.0) {
    throw std::invalid_argument(
        "poisson_trace: model_weights must have a positive sum");
  }
  if (config.prefix_groups > 0 &&
      (config.prefix_tokens == 0 ||
       config.prefix_tokens > config.input_tokens)) {
    throw std::invalid_argument(
        "poisson_trace: prefix_tokens must be in (0, input_tokens] when "
        "prefix_groups > 0");
  }

  Rng rng(config.seed);
  const double cycles_per_second = config.clock_hz;
  // Bursts arrive at rate/burst so the request rate is unchanged.
  const double burst_rate =
      config.arrival_rate_per_s / static_cast<double>(config.burst);
  std::vector<Request> trace;
  trace.reserve(config.requests);
  double arrival_s = 0.0;
  for (std::size_t i = 0; i < config.requests; ++i) {
    // Exponential inter-arrival via inverse transform; uniform() is in
    // [0, 1) so 1 - u is in (0, 1] and the log is finite. Requests
    // within a burst share one draw.
    if (i % config.burst == 0) {
      arrival_s += -std::log(1.0 - rng.uniform()) / burst_rate;
    }
    Request r;
    r.id = i;
    r.arrival = static_cast<Cycle>(arrival_s * cycles_per_second);
    r.model = config.model;
    if (!config.model_weights.empty()) {
      // Zoo mix: inverse-CDF draw over the weight vector. The draw sits
      // AFTER the arrival draw and before the output draw, so an empty
      // vector consumes no randomness and replays pre-zoo traces
      // byte-identically.
      double u = rng.uniform() * weight_sum;
      r.model = config.model_weights.size() - 1;
      for (std::size_t m = 0; m < config.model_weights.size(); ++m) {
        u -= config.model_weights[m];
        if (u < 0.0) {
          r.model = m;
          break;
        }
      }
    }
    r.input_tokens = config.input_tokens;
    r.crops = config.crops;
    if (config.prefix_groups > 0) {
      // Conversation-group draw, AFTER the model draw and before the
      // output draw — prefix_groups == 0 consumes no randomness, so
      // pre-prefix traces replay byte-identically.
      r.prefix_id = static_cast<std::size_t>(rng.uniform_int(
          std::int64_t{1}, static_cast<std::int64_t>(config.prefix_groups)));
      r.prefix_tokens = config.prefix_tokens;
    }
    r.output_tokens = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(config.min_output_tokens),
                        static_cast<std::int64_t>(config.max_output_tokens)));
    if (config.slo_base_ms > 0.0) {
      const double slo_ms =
          config.slo_base_ms +
          config.slo_per_token_ms * static_cast<double>(r.output_tokens);
      r.deadline = r.arrival + static_cast<Cycle>(slo_ms * 1e-3 * config.clock_hz);
    }
    trace.push_back(r);
  }
  return trace;
}

}  // namespace edgemm::serve
