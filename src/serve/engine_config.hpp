// EngineConfig: composes the serving engine's policies and knobs.
//
// Replaces the PR-1 flat ServingOptions struct (kept below as a
// deprecated shim). A config is built fluently and validated once by
// the engine:
//
//   auto cfg = EngineConfig()
//                  .scheduler(std::make_shared<SloAwarePolicy>(limits))
//                  .prefill_planner(std::make_shared<ChunkedPrefill>(128))
//                  .batch_policy(std::make_shared<ShortestRemainingFirst>())
//                  .kv_capacity_bytes(chip_kv_capacity(chip, 256.0));
#ifndef EDGEMM_SERVE_ENGINE_CONFIG_HPP
#define EDGEMM_SERVE_ENGINE_CONFIG_HPP

#include <memory>
#include <optional>

#include "baselines/gpu_model.hpp"
#include "core/bandwidth_manager.hpp"
#include "core/fast_replay.hpp"
#include "model/mllm_config.hpp"
#include "pruning/task_proxy.hpp"
#include "serve/admission.hpp"
#include "serve/kv_pages.hpp"
#include "serve/policy.hpp"

namespace edgemm::serve {

/// Wires the §IV-A task-proxy accuracy model into the engine: instead of
/// a global prune_keep_fraction constant, each request's keep fraction
/// is derived from a proxy evaluation of its model (see
/// derive_keep_fraction).
struct TaskProxyPruningOptions {
  /// Proxy harness parameters (answer head, tokens sampled, FFN width).
  pruning::TaskProxyConfig proxy{};
  /// A pruning ratio is only adopted while the proxy's answer-agreement
  /// stays at or above this.
  double min_agreement = 0.85;
  /// Floor on the derived keep fraction (never prune more than 1-floor).
  double min_keep_fraction = 0.1;
  /// Caps on the derived activation profile, so the proxy stays cheap
  /// for big zoo models (it is an accuracy model, not a simulation).
  std::size_t max_proxy_channels = 512;
  std::size_t max_proxy_layers = 8;
};

/// Derives the decode keep fraction for `model` from the task proxy: the
/// dynamic Top-k ratio when its agreement clears min_agreement, else the
/// most aggressive fixed ratio that does, else 1.0 (pruning off).
/// Deterministic per (model name, options).
double derive_keep_fraction(const model::MllmConfig& model,
                            const TaskProxyPruningOptions& options);

/// Prices one keep fraction with the task-proxy accuracy model: the
/// proxy's answer-agreement when `model`'s FFN is pruned to exactly
/// `keep_fraction` (fixed ratio 1 - keep_fraction over the same capped
/// activation profile derive_keep_fraction uses). keep_fraction >= 1 is
/// exactly 1.0 (no pruning, no proxy run). Deterministic per
/// (model name, keep_fraction, options); throws std::invalid_argument
/// for a non-positive or > 1 fraction.
double quality_accuracy_proxy(const model::MllmConfig& model,
                              double keep_fraction,
                              const TaskProxyPruningOptions& options = {});

/// DEPRECATED PR-1 engine knobs, kept so existing call sites compile.
/// Convert with EngineConfig::from_legacy or pass to the deprecated
/// ServingEngine constructor.
struct ServingOptions {
  AdmissionLimits admission{};
  /// Adaptive CC:MC budget rebalancing; false = static equal sharing
  /// (the §IV-B baseline, PMC throttles still armed).
  bool manage_bandwidth = true;
  core::BandwidthPolicy policy{};
  /// Fraction of prunable FFN rows kept during decode (§IV-A); 1 = off.
  double prune_keep_fraction = 1.0;
  /// Cycles between bandwidth rebalances; 0 = the DMA throttle interval.
  Cycle rebalance_interval = 0;
};

// EnginePhase lives in serve/policy.hpp (included above) so
// OffloadContext can carry it; every EngineConfig user still sees it.

/// Policy composition + engine knobs for one trace replay.
class EngineConfig {
 public:
  /// Defaults reproduce PR-1 behavior: ConcurrencyPolicy with default
  /// AdmissionLimits, monolithic prefill, FIFO decode joins, bandwidth
  /// management on, pruning and KV accounting off.
  EngineConfig();

  /// The PR-1 shim: a ServingOptions mapped onto equivalent policies.
  static EngineConfig from_legacy(const ServingOptions& options);

  // --- Builder setters (each validates its argument eagerly) -------------
  EngineConfig& scheduler(std::shared_ptr<const SchedulerPolicy> policy);
  EngineConfig& prefill_planner(std::shared_ptr<const PrefillPlanner> planner);
  EngineConfig& batch_policy(std::shared_ptr<const BatchPolicy> policy);
  EngineConfig& manage_bandwidth(bool enabled);
  EngineConfig& bandwidth_policy(const core::BandwidthPolicy& policy);
  /// 0 = the DMA throttle interval.
  EngineConfig& rebalance_interval(Cycle interval);
  /// Global decode keep fraction in (0, 1]; overridden per request when
  /// task-proxy pruning is enabled. Throws std::invalid_argument.
  EngineConfig& prune_keep_fraction(double fraction);
  EngineConfig& task_proxy_pruning(TaskProxyPruningOptions options);
  /// KV byte budget for the decode batch; 0 (default) disables
  /// accounting — the Fig. 10 chip's raw CIM capacity is smaller than a
  /// single request's KV cache, so a meaningful budget must be chosen
  /// explicitly (see chip_kv_capacity's oversubscription parameter).
  EngineConfig& kv_capacity_bytes(Bytes bytes);
  /// Page-granular KV accounting (default: false — the PR 2 whole-
  /// footprint KvCapacityTracker, byte-identical to every prior PR).
  /// When on (and a KV budget is set), the engine reserves only the
  /// pages a request's PROMPT occupies at decode join and grows the
  /// reservation one page per generated-token page boundary; when the
  /// budget fills mid-decode it preempts SwapPolicy victims to DRAM and
  /// refills them (see KvPageAllocator). No effect without
  /// kv_capacity_bytes.
  EngineConfig& paged_kv(bool enabled);
  /// KV page size for paged_kv (default kDefaultKvPageBytes = 64 KiB).
  /// Throws std::invalid_argument on zero; validate() requires the KV
  /// budget to hold at least one page.
  EngineConfig& kv_page_bytes(Bytes bytes);
  /// Copy-on-write prefix sharing under paged_kv (default: true):
  /// requests with the same (model, Request::prefix_id) share their
  /// prefix's full pages under one refcounted run; each request CoW-
  /// forks the partial boundary page privately at join (its first
  /// divergent token writes there). false charges every request its
  /// whole prompt privately — the A/B baseline. No effect on traces
  /// without prefix ids.
  EngineConfig& kv_prefix_sharing(bool enabled);
  /// Victim selection for the paged-KV evict-to-DRAM swap tier (default
  /// LruSwapPolicy: least-recent page-table touch, ties by id). Throws
  /// std::invalid_argument on null. Only consulted under paged_kv.
  EngineConfig& kv_swap_policy(std::shared_ptr<const SwapPolicy> policy);
  /// Byte budget for weight-resident chunk chaining (the
  /// WeightResidencyTracker's capacity); 0 (default) disables residency
  /// — a residency-capable planner then degrades to per-chunk re-fetch,
  /// byte-for-byte the ChunkedPrefill behavior. Requires a planner with
  /// chains_weight_residency() (the engine validates against the chip's
  /// scratchpad at construction: the budget must stay within
  /// kMaxWeightResidencyOversubscription x the CC TCDM; see
  /// chip_weight_residency_capacity for sizing).
  EngineConfig& weight_residency_bytes(Bytes bytes);
  /// Share one refcounted weight pin per MODEL across its in-flight
  /// requests (default: true). A model's layer-group weights are the
  /// same bytes whichever request streams them, so the first attaching
  /// request fetches and charges the budget and later same-model
  /// requests ride the pin for free — their chunks skip the pinned
  /// layers' weight DMA immediately — until the last attached request's
  /// prefill retires. false restores the PR 3 per-request pins (every
  /// request charges the full layer-group bytes; kept for the bench
  /// baseline and A/B comparisons). No effect unless weight residency
  /// is active; with at most one in-flight request per model the two
  /// modes replay identically.
  EngineConfig& share_weight_pins(bool enabled);
  /// Residency-aware model placement: which models' pins to hold,
  /// acquire or evict against the shared budget (see PlacementPolicy).
  /// Default KeepCurrentPlacement — first-come pinning, eviction at
  /// refcount zero — which reproduces the placement-oblivious engine
  /// bit-for-bit. Only consulted when weight residency is active and
  /// share_weight_pins is on (per-request pin keys are never reused, so
  /// there is nothing to place). Throws std::invalid_argument on null.
  EngineConfig& placement_policy(std::shared_ptr<const PlacementPolicy> policy);
  /// Honest shared-pin fill timing (default: true): a fresh pin's bytes
  /// only count as on-chip once the owner's fill chunk retires, so a
  /// rider chunk dispatched before that re-fetches the not-yet-landed
  /// layer groups (ledgered as ServingResult::rider_refetch_bytes).
  /// false restores the PR 4 fill-timing-optimistic model — riders skip
  /// weight DMA the moment they attach — kept for A/B comparisons and
  /// the bench baselines. No effect without shared weight pins (a pin's
  /// owner is always ordered after its own fill).
  EngineConfig& rider_fill_barrier(bool enabled);
  /// Execution tier for the replay (default kDetailed): kFast prices op
  /// batches analytically with core::FastMemoryModel instead of walking
  /// every DMA burst through the event-driven memory hierarchy —
  /// typically >=10x faster at <1% makespan drift (the serving_trace
  /// bench gates both). Policies, admission and scheduling decisions run
  /// identically on either tier; only memory timing is approximated.
  EngineConfig& replay_mode(core::ReplayMode mode);
  /// Earliest-deadline-first pop order among arrived requests (default:
  /// false = arrival order, the PR 1–5 behavior, byte-identical).
  /// Requests without a deadline sort last under EDF; with no deadlines
  /// in the trace EDF degenerates to arrival order.
  EngineConfig& deadline_ordered_queue(bool enabled);
  /// Bounds lane-affinity chaining: at most `limit` consecutive
  /// same-affinity jobs are preferred over the FIFO head before the lane
  /// takes the head regardless (head-of-line fairness vs pin hold time).
  /// 0 (default) = unbounded, reproducing the PR 3 chaining bit-for-bit.
  /// Only meaningful when the planner prefers lane affinity.
  EngineConfig& lane_chain_limit(std::size_t limit);
  /// Serving stage split for disaggregated clusters (default kFull: the
  /// single-chip engine, byte-identical to every prior PR). kPrefillOnly
  /// retires each request at prefill end — zero tokens generated, the
  /// finished KV is the product; kDecodeOnly skips prefill entirely and
  /// treats each arrival as its KV landing on this chip. Set by
  /// ClusterEngine; composable with any policy set.
  EngineConfig& phase(EnginePhase phase);
  /// Per-layer-group fill landing for the rider fill barrier (default:
  /// false = the PR 5 pin-granular barrier, byte-identical). When on, a
  /// chunk that fetches not-yet-landed pinned groups LANDS them at its
  /// retirement — the owner's fill chunk and rider re-fetches alike — so
  /// a later rider re-fetches only the groups still in flight instead of
  /// the whole pinned set. Tightens rider_refetch_bytes; no effect with
  /// the barrier off or without shared pins.
  EngineConfig& per_group_fill_landing(bool enabled);
  /// Time constant (seconds of simulated time) of the per-model demand
  /// EWMA the engine maintains for placement policies
  /// (ModelDemand::demand_decayed): the signal relaxes toward the live
  /// queued+inflight count with e^(-dt/tau). Smaller = more reactive,
  /// larger = longer memory of past bursts. Default 1.0 s (about one
  /// zoo-trace burst gap); must be positive. The EWMA is maintained
  /// regardless — this only tunes it; policies opt in by reading it.
  EngineConfig& demand_decay_tau_s(double seconds);
  /// Pairs a fat backend (a GpuBackend over this spec, sharing the
  /// EdgeMM chip's simulator) with the engine, so an OffloadPolicy can
  /// route prefill chunks to it. Validates the spec eagerly (throws
  /// std::invalid_argument). Without this, no fat backend exists and
  /// the offload policy is never consulted.
  EngineConfig& fat_backend(const baselines::GpuSpec& spec);
  /// WHERE each prefill chunk executes in a heterogeneous EdgeMM+GPU
  /// pair (the fifth seam; see OffloadPolicy). Default NoOffload —
  /// byte-identical to a fat-backend-less engine even when one is
  /// configured. Throws std::invalid_argument on null; validate()
  /// rejects a non-NoOffload policy without a fat backend to route to.
  EngineConfig& offload_policy(std::shared_ptr<const OffloadPolicy> policy);
  /// Inject paged-KV swap-in refill traffic as DMA ops on the MC decode
  /// lane (default: false — refills are bookkeeping-only, byte-identical
  /// to PR 8). When on, each refill's re-fetched bytes ride the next
  /// decode step as a KV-stream op, so a SwapPolicy's thrashing costs
  /// decode bandwidth in the timing plane instead of being free. No
  /// effect without paged_kv.
  EngineConfig& kv_swap_refill_dma(bool enabled);
  /// At WHAT quality (FFN keep fraction) each request is served (the
  /// sixth seam; see QualityPolicy). Default StaticQuality — every
  /// request serves at its static per-model fraction, byte-identical to
  /// an engine with no quality seam. Throws std::invalid_argument on
  /// null.
  EngineConfig& quality_policy(std::shared_ptr<const QualityPolicy> policy);
  /// The validated [min_keep, max_keep] band dynamic quality judgments
  /// are clamped into (default [0.25, 1.0]); the engine widens the
  /// effective band to always include the static per-model fraction, so
  /// StaticQuality passes through whatever the band. Throws
  /// std::invalid_argument unless 0 < min_keep <= max_keep <= 1.
  EngineConfig& quality_band(double min_keep, double max_keep);

  // --- Getters ------------------------------------------------------------
  const SchedulerPolicy& scheduler() const { return *scheduler_; }
  const PrefillPlanner& prefill_planner() const { return *planner_; }
  const BatchPolicy& batch_policy() const { return *batcher_; }
  bool manage_bandwidth() const { return manage_bandwidth_; }
  const core::BandwidthPolicy& bandwidth_policy() const { return bandwidth_; }
  Cycle rebalance_interval() const { return rebalance_interval_; }
  double prune_keep_fraction() const { return prune_keep_fraction_; }
  const std::optional<TaskProxyPruningOptions>& task_proxy_pruning() const {
    return task_proxy_;
  }
  Bytes kv_capacity() const { return kv_capacity_bytes_; }
  bool paged_kv() const { return paged_kv_; }
  Bytes kv_page_bytes() const { return kv_page_bytes_; }
  bool kv_prefix_sharing() const { return kv_prefix_sharing_; }
  const SwapPolicy& kv_swap_policy() const { return *swap_policy_; }
  Bytes weight_residency() const { return weight_residency_bytes_; }
  bool share_weight_pins() const { return share_weight_pins_; }
  const PlacementPolicy& placement() const { return *placement_; }
  bool rider_fill_barrier() const { return rider_fill_barrier_; }
  core::ReplayMode replay_mode() const { return replay_mode_; }
  bool deadline_ordered_queue() const { return deadline_ordered_queue_; }
  std::size_t lane_chain_limit() const { return lane_chain_limit_; }
  EnginePhase phase() const { return phase_; }
  bool per_group_fill_landing() const { return per_group_fill_landing_; }
  double demand_decay_tau_s() const { return demand_decay_tau_s_; }
  const std::optional<baselines::GpuSpec>& fat_backend() const {
    return fat_backend_;
  }
  const OffloadPolicy& offload_policy() const { return *offload_; }
  /// The shared_ptr itself (cluster plumbing re-composes configs).
  const std::shared_ptr<const OffloadPolicy>& offload_policy_ptr() const {
    return offload_;
  }
  bool kv_swap_refill_dma() const { return kv_swap_refill_dma_; }
  const QualityPolicy& quality() const { return *quality_; }
  /// The shared_ptr itself (cluster plumbing re-composes configs).
  const std::shared_ptr<const QualityPolicy>& quality_policy_ptr() const {
    return quality_;
  }
  double quality_min_keep() const { return quality_min_keep_; }
  double quality_max_keep() const { return quality_max_keep_; }

  /// Re-checks the composed whole (policies present, fractions sane).
  /// The engine calls this once at construction; throws
  /// std::invalid_argument with the violated condition.
  void validate() const;

 private:
  std::shared_ptr<const SchedulerPolicy> scheduler_;
  std::shared_ptr<const PrefillPlanner> planner_;
  std::shared_ptr<const BatchPolicy> batcher_;
  std::shared_ptr<const PlacementPolicy> placement_;
  bool manage_bandwidth_ = true;
  core::BandwidthPolicy bandwidth_{};
  Cycle rebalance_interval_ = 0;
  double prune_keep_fraction_ = 1.0;
  std::optional<TaskProxyPruningOptions> task_proxy_;
  Bytes kv_capacity_bytes_ = 0;
  bool paged_kv_ = false;
  Bytes kv_page_bytes_ = kDefaultKvPageBytes;
  bool kv_prefix_sharing_ = true;
  std::shared_ptr<const SwapPolicy> swap_policy_;
  Bytes weight_residency_bytes_ = 0;
  bool share_weight_pins_ = true;
  bool rider_fill_barrier_ = true;
  core::ReplayMode replay_mode_ = core::ReplayMode::kDetailed;
  bool deadline_ordered_queue_ = false;
  std::size_t lane_chain_limit_ = 0;
  EnginePhase phase_ = EnginePhase::kFull;
  bool per_group_fill_landing_ = false;
  double demand_decay_tau_s_ = 1.0;
  std::optional<baselines::GpuSpec> fat_backend_;
  std::shared_ptr<const OffloadPolicy> offload_;
  bool kv_swap_refill_dma_ = false;
  std::shared_ptr<const QualityPolicy> quality_;
  double quality_min_keep_ = 0.25;
  double quality_max_keep_ = 1.0;
};

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_ENGINE_CONFIG_HPP
