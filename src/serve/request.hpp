// Request-level serving types: what enters the engine and what it
// records about each request's lifecycle.
#ifndef EDGEMM_SERVE_REQUEST_HPP
#define EDGEMM_SERVE_REQUEST_HPP

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"
#include "common/units.hpp"

namespace edgemm::serve {

using RequestId = std::uint64_t;

/// One inference request entering the serving engine.
struct Request {
  RequestId id = 0;
  Cycle arrival = 0;  ///< cycle at which the request enters the queue
  /// Index into the engine's model list (multi-model serving batches
  /// decode only among requests of the same model).
  std::size_t model = 0;
  std::size_t input_tokens = 300;  ///< prompt + vision tokens entering the LLM
  std::size_t output_tokens = 128; ///< tokens to generate
  std::size_t crops = 1;           ///< encoder passes (sub-image crops)
  /// Absolute SLO deadline (cycle by which the last token must retire);
  /// 0 = no deadline. SLO-aware schedulers may reject requests that
  /// cannot meet theirs.
  Cycle deadline = 0;
  /// Shared-prefix conversation group: requests with the same
  /// (model, prefix_id) share their first prefix_tokens prompt tokens
  /// (a common system/image prompt), which the paged KV allocator
  /// CoW-shares (EngineConfig::kv_prefix_sharing). 0 = no shared prefix.
  std::size_t prefix_id = 0;
  /// Leading prompt tokens shared with the group (<= input_tokens);
  /// ignored when prefix_id is 0.
  std::size_t prefix_tokens = 0;
};

/// Lifecycle timestamps the engine records per request (all in cycles).
struct RequestRecord {
  Request request;
  Cycle admitted = 0;       ///< popped from the queue, prefill submitted
  Cycle prefill_start = 0;  ///< CC-lane job dispatched
  Cycle prefill_end = 0;    ///< encoder + prefill retired
  Cycle first_token = 0;    ///< first decode step including this request
  Cycle finish = 0;         ///< last output token retired
  std::size_t tokens_generated = 0;
  std::size_t prefill_chunks = 0;  ///< CC-lane jobs the planner cut prefill into
  /// Prefill chunks the fat backend ran (OffloadPolicy; 0 = all local).
  std::size_t offloaded_chunks = 0;
  /// LLM layer groups this request held pinned on-chip during its
  /// chunked prefill (0 = no pin: planner without residency, zero
  /// budget, or the pin fell back under contention).
  std::size_t weight_pinned_layers = 0;
  /// Fraction of prunable FFN rows kept during this request's decode
  /// (global EngineConfig constant, or per-model from the task proxy).
  double prune_keep_fraction = 1.0;
  /// Fraction the QualityPolicy actually served this request at — its
  /// last judgment, clamped into the effective band. Equal to
  /// prune_keep_fraction under StaticQuality; below it means the
  /// request was degraded under load (see the ServingResult quality
  /// ledger). 1.0 for requests never judged (rejected / unadmitted).
  double keep_fraction_served = 1.0;
  bool done = false;
  bool rejected = false;  ///< dropped by the scheduler policy, never served

  Cycle latency_cycles() const { return finish - request.arrival; }
  double latency_ms(double clock_hz = kChipClockHz) const {
    return cycles_to_ms(latency_cycles(), clock_hz);
  }
  Cycle queue_delay_cycles() const { return prefill_start - request.arrival; }
  /// True when the request completed and met its deadline (requests
  /// without a deadline always do; rejected requests never do).
  bool deadline_met() const {
    return done && (request.deadline == 0 || finish <= request.deadline);
  }
};

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_REQUEST_HPP
