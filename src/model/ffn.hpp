// Gated-MLP FFN reference (Eq. 1) — the numeric ground truth for the
// pruning-accuracy evaluation of Fig. 12(b).
//
//   FFN(Vx) = ((Vx · W_up) ∘ act(Vx · W_gate)) · W_down
//
// with W_up, W_gate ∈ R^{d_model × d_ffn}, W_down ∈ R^{d_ffn × d_model}
// and SiLU as act() (LLaMA-family convention).
#ifndef EDGEMM_MODEL_FFN_HPP
#define EDGEMM_MODEL_FFN_HPP

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/tensor.hpp"

namespace edgemm::model {

/// Weights of one gated-MLP block.
struct GatedMlpWeights {
  Tensor up;    ///< d_model × d_ffn
  Tensor gate;  ///< d_model × d_ffn
  Tensor down;  ///< d_ffn × d_model

  std::size_t d_model() const { return up.rows(); }
  std::size_t d_ffn() const { return up.cols(); }
};

/// Draws Gaussian weights with the 1/sqrt(d) scaling of trained
/// transformer blocks; deterministic in `rng`.
GatedMlpWeights random_gated_mlp(std::size_t d_model, std::size_t d_ffn, Rng& rng);

/// Dense reference: exact Eq. 1 on FP32.
std::vector<float> ffn_reference(const GatedMlpWeights& w, std::span<const float> vx);

/// Eq. 1 with the input channels restricted to `kept_channels`
/// (ascending indices into Vx): the arithmetic the CIM macro performs
/// after the hardware pruner dropped the other rows of W_up / W_gate.
/// Channels of the hidden vector Vd are kept dense.
std::vector<float> ffn_pruned(const GatedMlpWeights& w, std::span<const float> vx,
                              std::span<const std::size_t> kept_channels);

/// Intermediate hidden activation Vd = (Vx·W_up) ∘ act(Vx·W_gate) — the
/// second sparse vector the paper calls out in Fig. 3.
std::vector<float> ffn_hidden(const GatedMlpWeights& w, std::span<const float> vx);

}  // namespace edgemm::model

#endif  // EDGEMM_MODEL_FFN_HPP
