#include "model/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edgemm::model {

namespace {

using core::GemmWork;

/// Appends the projection + attention ops of one transformer layer.
/// Weight-bearing ops (QKV/O/MLP) process `m_weights` rows; the KV-cache
/// stream ops are emitted once per entry of `contexts` with `m_attn`
/// rows each — one entry for a single request, one entry per batched
/// request for a continuous-batching decode step (private KV caches
/// cannot share a fetch the way weights do).
/// core::pruned_ops' rounding, applied at emission time: the quality
/// seam must price a directly-emitted pruned prefill op and a
/// pruned_ops-transformed decode op identically.
std::size_t pruned_dim(std::size_t k, double keep) {
  if (keep >= 1.0) return k;
  const auto kept =
      static_cast<std::size_t>(std::ceil(static_cast<double>(k) * keep));
  return std::max<std::size_t>(kept, 1);
}

void append_layer_ops(std::vector<GemmWork>& ops, const TransformerShape& s,
                      std::size_t m_weights, std::size_t m_attn,
                      std::span<const std::size_t> contexts, Phase phase,
                      bool mark_ffn_prunable, bool weights_resident = false,
                      double ffn_keep = 1.0) {
  const std::size_t d = s.d_model;
  const std::size_t kv = s.kv_dim();

  // Fused QKV projection.
  ops.push_back({m_weights, d, d + 2 * kv, phase, weights_resident, 0, false});
  // Attention score and value contractions stream the KV cache (BF16)
  // rather than weights — per-request context, never resident.
  for (const std::size_t context : contexts) {
    ops.push_back({m_attn, kv, context, phase, false, 2, false});
    ops.push_back({m_attn, context, kv, phase, false, 2, false});
  }
  // Output projection.
  ops.push_back({m_weights, d, d, phase, weights_resident, 0, false});
  // MLP. Gated blocks have up + gate + down (Eq. 1); classic blocks have
  // up + down. Decode-phase FFN rows are what the activation-aware
  // pruner drops (§IV-A); ffn_keep applies the same drop to the emitted
  // shapes directly (the quality seam's pre-pruned prefill).
  const std::size_t up_k = pruned_dim(d, ffn_keep);
  const std::size_t down_k = pruned_dim(s.d_ffn, ffn_keep);
  if (s.gated_mlp) {
    ops.push_back({m_weights, up_k, s.d_ffn, phase, weights_resident, 0,
                   mark_ffn_prunable});  // up
    ops.push_back({m_weights, up_k, s.d_ffn, phase, weights_resident, 0,
                   mark_ffn_prunable});  // gate
  } else {
    ops.push_back({m_weights, up_k, s.d_ffn, phase, weights_resident, 0,
                   mark_ffn_prunable});  // up
  }
  ops.push_back({m_weights, down_k, d, phase, weights_resident, 0,
                 mark_ffn_prunable});  // down
}

/// The single-request form: `m` tokens attending `context` positions.
void append_layer_ops(std::vector<GemmWork>& ops, const TransformerShape& s,
                      std::size_t m, std::size_t context, Phase phase,
                      bool mark_ffn_prunable, bool weights_resident = false,
                      double ffn_keep = 1.0) {
  const std::size_t contexts[] = {context};
  append_layer_ops(ops, s, m, m, contexts, phase, mark_ffn_prunable,
                   weights_resident, ffn_keep);
}

}  // namespace

std::vector<core::GemmWork> build_encoder_ops(const MllmConfig& model,
                                              std::size_t crops) {
  if (crops == 0) {
    throw std::invalid_argument("build_encoder_ops: crops must be > 0");
  }
  std::vector<GemmWork> ops;
  // GEMM over all crops' patch tokens.
  const std::size_t enc_tokens = model.vision_tokens * crops;
  for (const TransformerShape& tower : model.encoders) {
    for (std::size_t layer = 0; layer < tower.layers; ++layer) {
      append_layer_ops(ops, tower, enc_tokens, enc_tokens,
                       Phase::kVisionEncoder, false);
    }
  }
  // Projector (MLP/LDP/Q-Former) folded into the encoder stage; its
  // latency is negligible (Fig. 2(a)).
  if (model.projector_params > 0) {
    const std::size_t eq_dim = model.llm.d_model;
    const std::size_t eq_k =
        std::max<std::size_t>(model.projector_params / eq_dim, 1);
    ops.push_back(
        {enc_tokens, eq_k, eq_dim, Phase::kVisionEncoder, false, 0, false});
  }
  return ops;
}

std::vector<core::GemmWork> build_prefill_chunk(
    const MllmConfig& model, std::size_t start, std::size_t tokens,
    std::size_t prompt_tokens, std::size_t resident_layers, double ffn_keep,
    std::size_t full_keep_layers) {
  if (tokens == 0) {
    throw std::invalid_argument("build_prefill_chunk: tokens must be > 0");
  }
  if (start + tokens > prompt_tokens) {
    throw std::invalid_argument(
        "build_prefill_chunk: chunk exceeds the prompt");
  }
  if (resident_layers > model.llm.layers) {
    throw std::invalid_argument(
        "build_prefill_chunk: resident_layers exceeds the LLM layer count");
  }
  if (full_keep_layers > model.llm.layers) {
    throw std::invalid_argument(
        "build_prefill_chunk: full_keep_layers exceeds the LLM layer count");
  }
  if (!(ffn_keep > 0.0) || ffn_keep > 1.0) {
    throw std::invalid_argument(
        "build_prefill_chunk: ffn_keep must be in (0, 1]");
  }
  std::vector<GemmWork> ops;
  for (std::size_t layer = 0; layer < model.llm.layers; ++layer) {
    append_layer_ops(ops, model.llm, tokens, prompt_tokens, Phase::kPrefill,
                     false, /*weights_resident=*/layer < resident_layers,
                     /*ffn_keep=*/layer < full_keep_layers ? 1.0 : ffn_keep);
  }
  return ops;
}

std::size_t llm_layer_weight_elems(const MllmConfig& model) {
  // QKV + O + MLP rectangles of one layer, exactly the override-0 ops
  // append_layer_ops emits — which is also the layer's parameter count.
  return model.llm.attn_params_per_layer() + model.llm.ffn_params_per_layer();
}

std::size_t kv_bytes_per_token(const MllmConfig& model) {
  return model.llm.layers * 2 * model.llm.kv_dim() * 2;  // K+V rows, BF16
}

core::PhaseWorkload build_phase_workload(const MllmConfig& model,
                                         const WorkloadParams& params) {
  if (params.input_tokens == 0 || params.crops == 0) {
    throw std::invalid_argument("build_phase_workload: tokens/crops must be > 0");
  }
  core::PhaseWorkload w;
  w.encoder = build_encoder_ops(model, params.crops);
  w.prefill =
      build_prefill_chunk(model, 0, params.input_tokens, params.input_tokens);

  // --- One decode iteration -----------------------------------------------
  for (std::size_t layer = 0; layer < model.llm.layers; ++layer) {
    append_layer_ops(w.decode_token, model.llm, 1, params.decode_context,
                     Phase::kDecode, true);
  }
  if (model.llm.vocab > 0) {
    w.decode_token.push_back(
        {1, model.llm.d_model, model.llm.vocab, Phase::kDecode, false, 0, false});
  }
  return w;
}

WorkloadParams default_params_for_output(std::size_t input_tokens,
                                         std::size_t output_tokens,
                                         std::size_t crops) {
  WorkloadParams p;
  p.input_tokens = input_tokens;
  p.crops = crops;
  p.decode_context = input_tokens + output_tokens / 2;
  return p;
}

core::PhaseWorkload build_request_workload(const MllmConfig& model,
                                           const RequestShape& shape) {
  if (shape.output_tokens == 0) {
    throw std::invalid_argument("build_request_workload: output_tokens must be > 0");
  }
  return build_phase_workload(
      model, default_params_for_output(shape.input_tokens, shape.output_tokens,
                                       shape.crops));
}

std::vector<core::GemmWork> build_decode_step(
    const MllmConfig& model, std::span<const std::size_t> contexts) {
  if (contexts.empty()) {
    throw std::invalid_argument("build_decode_step: empty batch");
  }
  for (const std::size_t context : contexts) {
    if (context == 0) {
      throw std::invalid_argument("build_decode_step: zero attention context");
    }
  }
  std::vector<GemmWork> ops;
  const std::size_t batch = contexts.size();
  for (std::size_t layer = 0; layer < model.llm.layers; ++layer) {
    append_layer_ops(ops, model.llm, batch, 1, contexts, Phase::kDecode, true);
  }
  if (model.llm.vocab > 0) {
    ops.push_back(
        {batch, model.llm.d_model, model.llm.vocab, Phase::kDecode, false, 0, false});
  }
  return ops;
}

std::vector<core::GemmWork> build_decode_step(
    const MllmConfig& model, std::span<const std::size_t> contexts,
    double keep_fraction) {
  return core::pruned_ops(build_decode_step(model, contexts), keep_fraction);
}

std::vector<core::GemmWork> aggregate_ops(const std::vector<core::GemmWork>& ops) {
  std::vector<core::GemmWork> out;
  for (const core::GemmWork& op : ops) {
    bool merged = false;
    for (core::GemmWork& agg : out) {
      if (agg.m == op.m && agg.k == op.k && agg.phase == op.phase &&
          agg.prunable == op.prunable &&
          agg.weight_elem_bytes_override == op.weight_elem_bytes_override &&
          agg.weights_resident == op.weights_resident) {
        agg.n += op.n;
        merged = true;
        break;
      }
    }
    if (!merged) out.push_back(op);
  }
  return out;
}

core::PhaseWorkload aggregate_workload(const core::PhaseWorkload& workload) {
  core::PhaseWorkload out;
  out.encoder = aggregate_ops(workload.encoder);
  out.prefill = aggregate_ops(workload.prefill);
  out.decode_token = aggregate_ops(workload.decode_token);
  return out;
}

}  // namespace edgemm::model
