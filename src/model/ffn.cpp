#include "model/ffn.hpp"

#include <cmath>
#include <stdexcept>

#include "coproc/vector_unit.hpp"

namespace edgemm::model {

GatedMlpWeights random_gated_mlp(std::size_t d_model, std::size_t d_ffn, Rng& rng) {
  const double scale_in = 1.0 / std::sqrt(static_cast<double>(d_model));
  const double scale_out = 1.0 / std::sqrt(static_cast<double>(d_ffn));
  auto fill = [&rng](Tensor& t, double scale) {
    for (float& v : t.flat()) v = static_cast<float>(rng.gaussian(0.0, scale));
  };
  GatedMlpWeights w{Tensor(d_model, d_ffn), Tensor(d_model, d_ffn),
                    Tensor(d_ffn, d_model)};
  fill(w.up, scale_in);
  fill(w.gate, scale_in);
  fill(w.down, scale_out);
  return w;
}

std::vector<float> ffn_reference(const GatedMlpWeights& w, std::span<const float> vx) {
  if (vx.size() != w.d_model()) {
    throw std::invalid_argument("ffn_reference: Vx length must be d_model");
  }
  const std::vector<float> hidden = ffn_hidden(w, vx);
  return gemv_reference(hidden, w.down);
}

std::vector<float> ffn_hidden(const GatedMlpWeights& w, std::span<const float> vx) {
  if (vx.size() != w.d_model()) {
    throw std::invalid_argument("ffn_hidden: Vx length must be d_model");
  }
  const std::vector<float> up = gemv_reference(vx, w.up);
  const std::vector<float> gate = gemv_reference(vx, w.gate);
  std::vector<float> hidden(up.size());
  for (std::size_t i = 0; i < up.size(); ++i) {
    hidden[i] = up[i] * coproc::VectorUnit::silu(gate[i]);
  }
  return hidden;
}

std::vector<float> ffn_pruned(const GatedMlpWeights& w, std::span<const float> vx,
                              std::span<const std::size_t> kept_channels) {
  if (vx.size() != w.d_model()) {
    throw std::invalid_argument("ffn_pruned: Vx length must be d_model");
  }
  const std::size_t d_ffn = w.d_ffn();
  std::vector<float> up(d_ffn, 0.0F);
  std::vector<float> gate(d_ffn, 0.0F);
  for (const std::size_t ch : kept_channels) {
    if (ch >= vx.size()) {
      throw std::out_of_range("ffn_pruned: kept channel out of range");
    }
    const float v = vx[ch];
    if (v == 0.0F) continue;
    for (std::size_t j = 0; j < d_ffn; ++j) {
      up[j] += v * w.up.at(ch, j);
      gate[j] += v * w.gate.at(ch, j);
    }
  }
  std::vector<float> hidden(d_ffn);
  for (std::size_t j = 0; j < d_ffn; ++j) {
    hidden[j] = up[j] * coproc::VectorUnit::silu(gate[j]);
  }
  return gemv_reference(hidden, w.down);
}

}  // namespace edgemm::model
