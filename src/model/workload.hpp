// Builds the per-phase operation lists (core::PhaseWorkload) that the
// timing plane executes for a given MLLM.
#ifndef EDGEMM_MODEL_WORKLOAD_HPP
#define EDGEMM_MODEL_WORKLOAD_HPP

#include <span>

#include "core/pipeline.hpp"
#include "model/mllm_config.hpp"

namespace edgemm::model {

/// Scenario parameters for one request.
struct WorkloadParams {
  /// Tokens entering the LLM (vision + prompt). The paper profiles with
  /// ~300, "primarily made up of vision tokens" (§II-B).
  std::size_t input_tokens = 300;
  /// Encoder passes per request: sub-image crops (SPHINX-style) or
  /// streamed camera frames in the real-time scenarios of §IV-B.
  std::size_t crops = 1;
  /// Average attention context during decode (input + generated/2).
  std::size_t decode_context = 364;
};

/// Expands `model` into encoder / prefill / per-token-decode op lists.
/// FFN projections of the decode phase are marked prunable (§IV-A);
/// KV-cache traffic is tagged with the BF16 element override.
core::PhaseWorkload build_phase_workload(const MllmConfig& model,
                                         const WorkloadParams& params);

/// Convenience: decode_context consistent with `output_tokens`.
WorkloadParams default_params_for_output(std::size_t input_tokens,
                                         std::size_t output_tokens,
                                         std::size_t crops = 1);

/// Shape of one serving request (serve::Request carries these fields).
struct RequestShape {
  std::size_t input_tokens = 300;
  std::size_t output_tokens = 128;
  std::size_t crops = 1;
};

/// Per-request workload: the phase op lists for exactly one request of
/// `model`, with the decode context derived from the request's own
/// prompt and output lengths (the request-level analogue of
/// build_phase_workload + default_params_for_output).
core::PhaseWorkload build_request_workload(const MllmConfig& model,
                                           const RequestShape& shape);

/// Vision-encoder (+ projector) ops for one request with `crops` encoder
/// passes — the front of every prefill plan. Throws std::invalid_argument
/// for zero crops.
std::vector<core::GemmWork> build_encoder_ops(const MllmConfig& model,
                                              std::size_t crops);

/// One chunk of a chunked prefill: LLM-prefill ops for prompt tokens
/// [start, start + tokens) of a `prompt_tokens`-long prompt. Attention
/// is charged at the same rectangle convention as the monolithic
/// prefill of build_phase_workload (every row attends the full
/// `prompt_tokens` context), so a plan whose chunk sizes sum to the
/// prompt length models EXACTLY the monolithic op totals — planners
/// differ only in how the work is sliced into lane jobs (and in the
/// per-chunk weight re-fetch). Chunk (0, prompt_tokens, prompt_tokens)
/// IS the monolithic prefill.
///
/// `resident_layers` is the weight-resident chunk-chaining seam: the
/// weight-bearing ops (QKV/O/MLP) of the first `resident_layers` LLM
/// layers are emitted with GemmWork::weights_resident set, zeroing
/// their weight-stream rectangle — those layer groups are pinned
/// on-chip by an earlier chunk of the same request (see
/// serve::WeightResidencyTracker). KV-stream attention ops always keep
/// their traffic: the KV cache is per-request context, not weights, and
/// is never pinned. 0 (the default) re-fetches everything, byte-
/// identical to the PR 2 behavior.
///
/// `ffn_keep` is the serving-quality seam: the FFN projections (up/gate/
/// down) of layers at or beyond `full_keep_layers` are emitted with
/// their k dimension shrunk to ceil(k * ffn_keep) (floor 1) — the same
/// rounding core::pruned_ops applies to prunable decode ops — so a
/// degraded request's streamed weight bytes actually shrink. The first
/// `full_keep_layers` layers always keep full shapes: pinned resident
/// layer groups hold the FULL weights on-chip, so their ledger math
/// (pin bytes, fill-barrier re-fetch) must stay exact whatever fraction
/// the request is served at. 1.0 (the default) emits today's ops
/// bit-identically.
///
/// Throws std::invalid_argument for zero tokens, start + tokens >
/// prompt_tokens, resident_layers or full_keep_layers > the model's LLM
/// layer count, or ffn_keep outside (0, 1].
std::vector<core::GemmWork> build_prefill_chunk(
    const MllmConfig& model, std::size_t start, std::size_t tokens,
    std::size_t prompt_tokens, std::size_t resident_layers = 0,
    double ffn_keep = 1.0, std::size_t full_keep_layers = 0);

/// Weight elements (summed k x n rectangles of the QKV/O/MLP
/// projections, KV streams excluded) of ONE LLM layer — the layer-group
/// granularity weight residency pins at. Multiply by the fetching
/// cluster's weight element size (ChipConfig::cc_elem_bytes on the CC
/// lane) for bytes.
std::size_t llm_layer_weight_elems(const MllmConfig& model);

/// Bytes one generated token appends to a request's KV cache: K and V
/// rows of kv_dim across all LLM layers, stored BF16 (the same element
/// override the decode KV-stream ops carry).
std::size_t kv_bytes_per_token(const MllmConfig& model);

/// One continuous-batching decode iteration for a batch of in-flight
/// requests with individual attention contexts. Weight-bearing ops
/// (QKV/O/FFN/LM-head) are batched to m = contexts.size(), amortizing a
/// single weight fetch across the batch (Fig. 9(c)); the KV-cache stream
/// ops stay per-request (m = 1) with each request's own context — unlike
/// weights, KV caches are private and cannot be shared across the batch.
std::vector<core::GemmWork> build_decode_step(
    const MllmConfig& model, std::span<const std::size_t> contexts);

/// The quality-seam form: the same decode step with the prunable FFN ops
/// pruned to `keep_fraction` via core::pruned_ops — exactly
/// pruned_ops(build_decode_step(model, contexts), keep_fraction), kept
/// as one call so engine and tests share the rounding.
std::vector<core::GemmWork> build_decode_step(
    const MllmConfig& model, std::span<const std::size_t> contexts,
    double keep_fraction);

/// Merges ops that share (k, phase, prunable, element override, residency)
/// by summing their n dimensions. Total weight bytes, FLOPs, and — thanks
/// to the linear tiling of both coprocessor cycle models — compute cycles
/// are preserved, while the op count (and hence event count in long
/// pipeline sweeps) drops by ~an order of magnitude.
std::vector<core::GemmWork> aggregate_ops(const std::vector<core::GemmWork>& ops);

/// aggregate_ops applied to every phase list of `workload`.
core::PhaseWorkload aggregate_workload(const core::PhaseWorkload& workload);

}  // namespace edgemm::model

#endif  // EDGEMM_MODEL_WORKLOAD_HPP
