// Builds the per-phase operation lists (core::PhaseWorkload) that the
// timing plane executes for a given MLLM.
#ifndef EDGEMM_MODEL_WORKLOAD_HPP
#define EDGEMM_MODEL_WORKLOAD_HPP

#include <span>

#include "core/pipeline.hpp"
#include "model/mllm_config.hpp"

namespace edgemm::model {

/// Scenario parameters for one request.
struct WorkloadParams {
  /// Tokens entering the LLM (vision + prompt). The paper profiles with
  /// ~300, "primarily made up of vision tokens" (§II-B).
  std::size_t input_tokens = 300;
  /// Encoder passes per request: sub-image crops (SPHINX-style) or
  /// streamed camera frames in the real-time scenarios of §IV-B.
  std::size_t crops = 1;
  /// Average attention context during decode (input + generated/2).
  std::size_t decode_context = 364;
};

/// Expands `model` into encoder / prefill / per-token-decode op lists.
/// FFN projections of the decode phase are marked prunable (§IV-A);
/// KV-cache traffic is tagged with the BF16 element override.
core::PhaseWorkload build_phase_workload(const MllmConfig& model,
                                         const WorkloadParams& params);

/// Convenience: decode_context consistent with `output_tokens`.
WorkloadParams default_params_for_output(std::size_t input_tokens,
                                         std::size_t output_tokens,
                                         std::size_t crops = 1);

/// Shape of one serving request (serve::Request carries these fields).
struct RequestShape {
  std::size_t input_tokens = 300;
  std::size_t output_tokens = 128;
  std::size_t crops = 1;
};

/// Per-request workload: the phase op lists for exactly one request of
/// `model`, with the decode context derived from the request's own
/// prompt and output lengths (the request-level analogue of
/// build_phase_workload + default_params_for_output).
core::PhaseWorkload build_request_workload(const MllmConfig& model,
                                           const RequestShape& shape);

/// One continuous-batching decode iteration for a batch of in-flight
/// requests with individual attention contexts. Weight-bearing ops
/// (QKV/O/FFN/LM-head) are batched to m = contexts.size(), amortizing a
/// single weight fetch across the batch (Fig. 9(c)); the KV-cache stream
/// ops stay per-request (m = 1) with each request's own context — unlike
/// weights, KV caches are private and cannot be shared across the batch.
std::vector<core::GemmWork> build_decode_step(
    const MllmConfig& model, std::span<const std::size_t> contexts);

/// Merges ops that share (k, phase, prunable, element override, residency)
/// by summing their n dimensions. Total weight bytes, FLOPs, and — thanks
/// to the linear tiling of both coprocessor cycle models — compute cycles
/// are preserved, while the op count (and hence event count in long
/// pipeline sweeps) drops by ~an order of magnitude.
std::vector<core::GemmWork> aggregate_ops(const std::vector<core::GemmWork>& ops);

/// aggregate_ops applied to every phase list of `workload`.
core::PhaseWorkload aggregate_workload(const core::PhaseWorkload& workload);

}  // namespace edgemm::model

#endif  // EDGEMM_MODEL_WORKLOAD_HPP
