// Model zoo: the representative MLLMs of paper Table I.
//
// Checkpoints are not shipped; what matters for every evaluated quantity
// is the architecture (layer counts, widths, head layout), from which
// parameter counts, FLOPs, and memory traffic follow exactly.
#ifndef EDGEMM_MODEL_MLLM_CONFIG_HPP
#define EDGEMM_MODEL_MLLM_CONFIG_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace edgemm::model {

/// Shape of one pre-norm transformer stack (vision tower or LLM).
struct TransformerShape {
  std::string name;
  std::size_t layers = 0;
  std::size_t d_model = 0;
  std::size_t d_ffn = 0;
  std::size_t heads = 1;
  std::size_t kv_heads = 1;  ///< < heads ⇒ grouped-query attention
  std::size_t vocab = 0;     ///< 0 for vision towers (no LM head)
  /// true = LLaMA-style gated MLP (3 projections, Eq. 1);
  /// false = classic 2-projection GELU MLP (ViT towers, Phi-2).
  bool gated_mlp = false;

  std::size_t head_dim() const { return d_model / heads; }
  std::size_t kv_dim() const { return head_dim() * kv_heads; }

  /// Parameters of the attention block of one layer (Q, K, V, O).
  std::size_t attn_params_per_layer() const;

  /// Parameters of the MLP block of one layer.
  std::size_t ffn_params_per_layer() const;

  /// Total stack parameters, LM head included when vocab > 0.
  std::size_t total_params() const;
};

/// A full multimodal LLM: encoder tower(s) + projector + language model.
struct MllmConfig {
  std::string name;
  std::vector<TransformerShape> encoders;  ///< one entry per vision tower
  std::size_t vision_tokens = 576;         ///< tokens produced per image
  std::string projector = "MLP";
  std::size_t projector_params = 0;
  TransformerShape llm;

  std::size_t encoder_params() const;
  std::size_t total_params() const;
};

// --- Table I entries -------------------------------------------------------

/// SPHINX-Tiny: CLIP-ConvNeXt + DINOv2 towers (≈0.4 B) + TinyLlama-1.1B.
/// The paper's primary workload (§V-A).
MllmConfig sphinx_tiny();

/// KarmaVLM: SigLIP-so (0.4 B) + CLIP ViT-L/14 (0.3 B) + Qwen1.5-0.5B.
/// The second profiled workload (Fig. 2).
MllmConfig karmavlm();

/// MobileVLM: CLIP ViT-L/14 + LDP projector + MobileLLaMA-2.7B.
MllmConfig mobilevlm();

/// TinyGPT-V: EVA tower + Q-Former projector + Phi-2 (2.7 B).
MllmConfig tinygpt_v();

/// DeepSeek-VL: SigLIP-L + DeepSeek-LLM-1.3B.
MllmConfig deepseek_vl();

/// LLaVA: CLIP ViT-L/14 + Vicuna-7B.
MllmConfig llava_7b();

/// Emu2-Chat: EVA tower + LLaMA-33B (the large-scale contrast row).
MllmConfig emu2_chat();

/// All Table I rows in presentation order.
std::vector<MllmConfig> model_zoo();

/// Looks a zoo entry up by name; throws std::invalid_argument if absent.
MllmConfig model_by_name(const std::string& name);

}  // namespace edgemm::model

#endif  // EDGEMM_MODEL_MLLM_CONFIG_HPP
