// Per-phase FLOP / byte analytics for MLLM inference — the quantities
// behind the workload analysis of paper Fig. 2.
#ifndef EDGEMM_MODEL_TRANSFORMER_HPP
#define EDGEMM_MODEL_TRANSFORMER_HPP

#include "common/types.hpp"
#include "model/mllm_config.hpp"

namespace edgemm::model {

/// Compute/traffic profile of one inference phase.
struct PhaseProfile {
  Flops flops = 0;          ///< multiply-accumulates × 2
  Bytes weight_bytes = 0;   ///< parameter traffic (once per phase pass)
  Bytes kv_bytes = 0;       ///< KV-cache read+write traffic
  Bytes act_bytes = 0;      ///< activation spill traffic
  std::size_t params = 0;   ///< parameters touched

  Bytes total_bytes() const { return weight_bytes + kv_bytes + act_bytes; }
  /// FLOP per byte — the compute-vs-memory-bound discriminator of Fig. 2(b).
  double arithmetic_intensity() const;
};

/// Memory-access composition of the decode phase (Fig. 2(c)).
struct MemoryBreakdown {
  Bytes ffn_weights = 0;
  Bytes attn_weights = 0;
  Bytes lm_head = 0;
  Bytes kv_cache = 0;
  Bytes activations = 0;

  Bytes total() const {
    return ffn_weights + attn_weights + lm_head + kv_cache + activations;
  }
};

/// Vision-encoder pass over `tokens` patch tokens (all towers).
PhaseProfile encoder_profile(const MllmConfig& model, std::size_t tokens,
                             std::size_t elem_bytes);

/// LLM prefill over `tokens` (vision + prompt) tokens.
PhaseProfile prefill_profile(const TransformerShape& llm, std::size_t tokens,
                             std::size_t elem_bytes);

/// ONE decode iteration at context length `context` (paper: two orders of
/// magnitude fewer FLOPs than prefill over the same parameters).
PhaseProfile decode_profile(const TransformerShape& llm, std::size_t context,
                            std::size_t elem_bytes);

/// Decode-phase memory composition, FFN vs attention vs KV (Fig. 2(c)).
MemoryBreakdown decode_memory_breakdown(const TransformerShape& llm,
                                        std::size_t context, std::size_t elem_bytes);

}  // namespace edgemm::model

#endif  // EDGEMM_MODEL_TRANSFORMER_HPP
