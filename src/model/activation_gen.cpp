#include "model/activation_gen.hpp"

#include <algorithm>
#include <stdexcept>

namespace edgemm::model {

ActivationGenerator::ActivationGenerator(const ActivationProfile& profile,
                                         std::uint64_t seed)
    : profile_(profile), seed_(seed) {
  if (profile.channels == 0 || profile.layers == 0) {
    throw std::invalid_argument("ActivationGenerator: channels/layers must be > 0");
  }
  if (profile.outlier_fraction < 0.0 || profile.outlier_fraction > 1.0) {
    throw std::invalid_argument("ActivationGenerator: outlier_fraction in [0,1]");
  }
}

double ActivationGenerator::outlier_gain(std::size_t layer) const {
  if (layer == 0) return profile_.first_layer_gain;
  if (profile_.layers <= 2) return profile_.outlier_gain_last;
  // Linear ramp over the stable layers 1 .. L-1.
  const double frac = static_cast<double>(layer - 1) /
                      static_cast<double>(profile_.layers - 2);
  return profile_.outlier_gain_first +
         frac * (profile_.outlier_gain_last - profile_.outlier_gain_first);
}

std::vector<std::size_t> ActivationGenerator::outlier_channels(std::size_t layer) const {
  // Stable layers derive the set from (seed, layer) only; layer 0 callers
  // should use activations() which mixes the token in.
  Rng rng(seed_ ^ (0x517CC1B727220A95ULL * (layer + 1)));
  const auto count = static_cast<std::size_t>(
      static_cast<double>(profile_.channels) * profile_.outlier_fraction);
  std::vector<std::size_t> channels;
  channels.reserve(count);
  while (channels.size() < count) {
    const auto ch = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(profile_.channels) - 1));
    if (std::find(channels.begin(), channels.end(), ch) == channels.end()) {
      channels.push_back(ch);
    }
  }
  std::sort(channels.begin(), channels.end());
  return channels;
}

std::vector<float> ActivationGenerator::activations(std::size_t layer,
                                                    std::size_t token) const {
  if (layer >= profile_.layers) {
    throw std::out_of_range("ActivationGenerator: layer out of range");
  }
  // Body values vary per (layer, token); outlier positions are stable per
  // layer except at layer 0, where the set reshuffles every token.
  Rng body_rng(seed_ ^ (0x9E3779B97F4A7C15ULL * (layer + 1)) ^
               (0xBF58476D1CE4E5B9ULL * (token + 1)));

  std::vector<std::size_t> outliers;
  if (layer == 0) {
    Rng set_rng(seed_ ^ 0xD1342543DE82EF95ULL ^ (0x94D049BB133111EBULL * (token + 1)));
    const auto count = static_cast<std::size_t>(
        static_cast<double>(profile_.channels) * profile_.outlier_fraction);
    while (outliers.size() < count) {
      const auto ch = static_cast<std::size_t>(
          set_rng.uniform_int(0, static_cast<std::int64_t>(profile_.channels) - 1));
      if (std::find(outliers.begin(), outliers.end(), ch) == outliers.end()) {
        outliers.push_back(ch);
      }
    }
  } else {
    outliers = outlier_channels(layer);
  }

  std::vector<float> v(profile_.channels);
  for (std::size_t c = 0; c < profile_.channels; ++c) {
    const double magnitude = body_rng.log_normal(profile_.body_mu, profile_.body_sigma);
    const double sign = body_rng.bernoulli(0.5) ? 1.0 : -1.0;
    v[c] = static_cast<float>(sign * magnitude);
  }
  const double gain = outlier_gain(layer);
  for (const std::size_t ch : outliers) {
    // Outliers keep the body's sign but scale up; mild per-channel jitter
    // keeps the top-k ordering non-degenerate.
    v[ch] *= static_cast<float>(gain * (0.75 + 0.5 * body_rng.uniform()));
  }
  return v;
}

}  // namespace edgemm::model
