#include "model/mllm_config.hpp"

#include <stdexcept>

namespace edgemm::model {

namespace {

// Published vision-tower shapes.
TransformerShape clip_vit_l14() {
  return {"CLIP ViT-L/14", 24, 1024, 4096, 16, 16, 0, false};
}
TransformerShape siglip_so400m() {
  return {"SigLIP-so400m", 27, 1152, 4304, 16, 16, 0, false};
}
TransformerShape siglip_large() {
  return {"SigLIP-L", 24, 1024, 4096, 16, 16, 0, false};
}
TransformerShape dinov2_large() {
  return {"DINOv2 ViT-L", 24, 1024, 4096, 16, 16, 0, false};
}
// ConvNeXt-L expressed as its transformer-equivalent compute shape (the
// timing plane only consumes layers × matmul dims; DESIGN.md §1 notes
// the substitution).
TransformerShape clip_convnext_l() {
  return {"CLIP ConvNeXt-L (equiv)", 24, 1024, 4096, 16, 16, 0, false};
}
TransformerShape eva_clip_g14() {
  return {"EVA-CLIP g/14", 40, 1408, 6144, 16, 16, 0, false};
}

}  // namespace

std::size_t TransformerShape::attn_params_per_layer() const {
  // Q and O are d×d; K and V are d×kv_dim (grouped-query attention).
  return 2 * d_model * d_model + 2 * d_model * kv_dim();
}

std::size_t TransformerShape::ffn_params_per_layer() const {
  const std::size_t projections = gated_mlp ? 3 : 2;  // up/gate/down vs up/down
  return projections * d_model * d_ffn;
}

std::size_t TransformerShape::total_params() const {
  const std::size_t per_layer = attn_params_per_layer() + ffn_params_per_layer();
  const std::size_t head = vocab > 0 ? vocab * d_model : 0;
  return layers * per_layer + head;
}

std::size_t MllmConfig::encoder_params() const {
  std::size_t total = 0;
  for (const TransformerShape& tower : encoders) total += tower.total_params();
  return total;
}

std::size_t MllmConfig::total_params() const {
  return encoder_params() + projector_params + llm.total_params();
}

MllmConfig sphinx_tiny() {
  MllmConfig cfg;
  cfg.name = "SPHINX-Tiny";
  cfg.encoders = {clip_convnext_l(), dinov2_large()};
  cfg.vision_tokens = 576;
  cfg.projector = "MLP";
  cfg.projector_params = 2 * 1024 * 2048;  // 2-layer MLP into the LLM width
  cfg.llm = {"TinyLlama-1.1B", 22, 2048, 5632, 32, 4, 32000, true};
  return cfg;
}

MllmConfig karmavlm() {
  MllmConfig cfg;
  cfg.name = "KarmaVLM";
  cfg.encoders = {siglip_so400m(), clip_vit_l14()};
  cfg.vision_tokens = 576;
  cfg.projector = "MLP";
  cfg.projector_params = 2 * 1152 * 1024;
  cfg.llm = {"Qwen1.5-0.5B", 24, 1024, 2816, 16, 16, 151936, true};
  return cfg;
}

MllmConfig mobilevlm() {
  MllmConfig cfg;
  cfg.name = "MobileVLM";
  cfg.encoders = {clip_vit_l14()};
  cfg.vision_tokens = 144;  // LDP downsamples 576 -> 144
  cfg.projector = "LDP";
  cfg.projector_params = 2 * 1024 * 2560;
  cfg.llm = {"MobileLLaMA-2.7B", 32, 2560, 6912, 32, 32, 32000, true};
  return cfg;
}

MllmConfig tinygpt_v() {
  MllmConfig cfg;
  cfg.name = "TinyGPT-V";
  cfg.encoders = {eva_clip_g14()};
  cfg.vision_tokens = 256;
  cfg.projector = "Q-Former";
  cfg.projector_params = 105'000'000;  // BLIP-2 Q-Former block
  cfg.llm = {"Phi-2", 32, 2560, 10240, 32, 32, 51200, false};
  return cfg;
}

MllmConfig deepseek_vl() {
  MllmConfig cfg;
  cfg.name = "DeepSeek-VL";
  cfg.encoders = {siglip_large()};
  cfg.vision_tokens = 576;
  cfg.projector = "MLP";
  cfg.projector_params = 2 * 1024 * 2048;
  cfg.llm = {"DeepSeek-LLM-1.3B", 24, 2048, 5504, 16, 16, 102400, true};
  return cfg;
}

MllmConfig llava_7b() {
  MllmConfig cfg;
  cfg.name = "LLaVA";
  cfg.encoders = {clip_vit_l14()};
  cfg.vision_tokens = 576;
  cfg.projector = "MLP";
  cfg.projector_params = 2 * 1024 * 4096;
  cfg.llm = {"Vicuna-7B", 32, 4096, 11008, 32, 32, 32000, true};
  return cfg;
}

MllmConfig emu2_chat() {
  MllmConfig cfg;
  cfg.name = "Emu2-Chat";
  cfg.encoders = {eva_clip_g14()};
  cfg.vision_tokens = 256;
  cfg.projector = "MLP";
  cfg.projector_params = 2 * 1408 * 6656;
  cfg.llm = {"LLaMA-33B", 60, 6656, 17920, 52, 52, 32000, true};
  return cfg;
}

std::vector<MllmConfig> model_zoo() {
  return {emu2_chat(),   llava_7b(),    mobilevlm(), tinygpt_v(),
          sphinx_tiny(), deepseek_vl(), karmavlm()};
}

MllmConfig model_by_name(const std::string& name) {
  for (const MllmConfig& cfg : model_zoo()) {
    if (cfg.name == name) return cfg;
  }
  throw std::invalid_argument("model_by_name: unknown model '" + name + "'");
}

}  // namespace edgemm::model
