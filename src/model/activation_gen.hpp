// Synthetic activation generator calibrated to the Fig. 3 observations.
//
// Fig. 3(b) profiles |Vx| during a token generation in SPHINX-Tiny:
// most channels are small, a few outlier channels dominate, and the
// outliers grow more prominent with layer depth. The paper further notes
// (§V-C) that the first layer has high kurtosis but an *unstable*
// distribution, which is why Alg. 1 skips it.
//
// The generator reproduces exactly those properties: a log-normal body,
// a per-layer fixed set of outlier channels whose magnitude scales with
// depth, and a layer-0 outlier set that reshuffles every token.
#ifndef EDGEMM_MODEL_ACTIVATION_GEN_HPP
#define EDGEMM_MODEL_ACTIVATION_GEN_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace edgemm::model {

/// Statistical shape of the synthetic activations.
struct ActivationProfile {
  std::size_t channels = 2048;   ///< d_model of the profiled LLM
  std::size_t layers = 22;       ///< decoder depth
  double body_sigma = 0.5;       ///< log-normal σ of the non-outlier mass
  double body_mu = -2.0;         ///< log-normal μ (body magnitudes ≈ 0.1)
  double outlier_fraction = 0.08;///< share of channels that are outliers
  /// Outlier magnitude multiplier ramp over layers 1..L-1 ("as the layer
  /// index increases, these outliers become more prominent"). Calibrated
  /// (with body_sigma / outlier_fraction) so the dynamic Top-k harness
  /// lands on the paper's Fig. 12 shape: ~50 % mean pruning ratio with
  /// cosine comparable to fixed-0.1 (EXPERIMENTS.md).
  double outlier_gain_first = 2.0;
  double outlier_gain_last = 10.0;
  /// Layer 0 is special (§V-C): high kurtosis but an *unstable*
  /// distribution — strong outliers whose positions reshuffle per token.
  double first_layer_gain = 12.0;
};

/// Deterministic activation source for (layer, token) pairs.
class ActivationGenerator {
 public:
  /// Throws std::invalid_argument for zero channels/layers or
  /// out-of-range fractions.
  ActivationGenerator(const ActivationProfile& profile, std::uint64_t seed);

  const ActivationProfile& profile() const { return profile_; }

  /// Signed activation vector for `layer` at generation step `token`.
  /// Layers ≥ 1 keep their outlier channel set across tokens; layer 0
  /// redraws it per token (the instability that makes pruning it unsafe).
  std::vector<float> activations(std::size_t layer, std::size_t token) const;

  /// The outlier channel set of a stable layer (for tests).
  std::vector<std::size_t> outlier_channels(std::size_t layer) const;

  /// Outlier gain applied at `layer` (linear ramp first→last).
  double outlier_gain(std::size_t layer) const;

 private:
  ActivationProfile profile_;
  std::uint64_t seed_;
};

}  // namespace edgemm::model

#endif  // EDGEMM_MODEL_ACTIVATION_GEN_HPP
