#include "model/transformer.hpp"

namespace edgemm::model {

double PhaseProfile::arithmetic_intensity() const {
  const Bytes bytes = total_bytes();
  if (bytes == 0) return 0.0;
  return static_cast<double>(flops) / static_cast<double>(bytes);
}

namespace {

/// FLOPs of one full stack pass over `tokens` tokens with `context`
/// attendable positions (projections + attention math).
Flops stack_flops(const TransformerShape& s, std::size_t tokens, std::size_t context) {
  const Flops proj_per_token =
      2ULL * (s.attn_params_per_layer() + s.ffn_params_per_layer());
  // QK^T and PV: per token, per layer, 2 × context × d_model each.
  const Flops attn_per_token = 4ULL * context * s.d_model;
  Flops total = static_cast<Flops>(s.layers) * tokens * (proj_per_token + attn_per_token);
  if (s.vocab > 0) {
    total += 2ULL * tokens * s.vocab * s.d_model;  // LM head
  }
  return total;
}

Bytes activation_traffic(const TransformerShape& s, std::size_t tokens,
                         std::size_t elem_bytes) {
  // Residual stream spills in and out of each layer.
  return 2ULL * s.layers * tokens * s.d_model * elem_bytes;
}

}  // namespace

PhaseProfile encoder_profile(const MllmConfig& model, std::size_t tokens,
                             std::size_t elem_bytes) {
  PhaseProfile p;
  for (const TransformerShape& tower : model.encoders) {
    p.flops += stack_flops(tower, tokens, tokens);
    p.weight_bytes += static_cast<Bytes>(tower.total_params()) * elem_bytes;
    p.act_bytes += activation_traffic(tower, tokens, elem_bytes);
    p.params += tower.total_params();
  }
  // Projector: negligible latency (Fig. 2(a)) but counted for fidelity.
  p.flops += 2ULL * tokens * model.projector_params;
  p.weight_bytes += static_cast<Bytes>(model.projector_params) * elem_bytes;
  p.params += model.projector_params;
  return p;
}

PhaseProfile prefill_profile(const TransformerShape& llm, std::size_t tokens,
                             std::size_t elem_bytes) {
  PhaseProfile p;
  p.flops = stack_flops(llm, tokens, tokens);
  p.weight_bytes = static_cast<Bytes>(llm.total_params()) * elem_bytes;
  // KV cache written once for every prefilled token.
  p.kv_bytes = 2ULL * llm.layers * tokens * llm.kv_dim() * elem_bytes;
  p.act_bytes = activation_traffic(llm, tokens, elem_bytes);
  p.params = llm.total_params();
  return p;
}

PhaseProfile decode_profile(const TransformerShape& llm, std::size_t context,
                            std::size_t elem_bytes) {
  PhaseProfile p;
  p.flops = stack_flops(llm, 1, context);
  p.weight_bytes = static_cast<Bytes>(llm.total_params()) * elem_bytes;
  // Read the whole cache, append one entry.
  p.kv_bytes = 2ULL * llm.layers * (context + 1) * llm.kv_dim() * elem_bytes;
  p.act_bytes = activation_traffic(llm, 1, elem_bytes);
  p.params = llm.total_params();
  return p;
}

MemoryBreakdown decode_memory_breakdown(const TransformerShape& llm,
                                        std::size_t context,
                                        std::size_t elem_bytes) {
  MemoryBreakdown b;
  b.ffn_weights =
      static_cast<Bytes>(llm.layers) * llm.ffn_params_per_layer() * elem_bytes;
  b.attn_weights =
      static_cast<Bytes>(llm.layers) * llm.attn_params_per_layer() * elem_bytes;
  b.lm_head = static_cast<Bytes>(llm.vocab) * llm.d_model * elem_bytes;
  b.kv_cache = 2ULL * llm.layers * (context + 1) * llm.kv_dim() * elem_bytes;
  b.activations = activation_traffic(llm, 1, elem_bytes);
  return b;
}

}  // namespace edgemm::model
