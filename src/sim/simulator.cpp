#include "sim/simulator.hpp"

#include <stdexcept>

namespace edgemm::sim {

void Simulator::schedule(Cycle delay, std::function<void()> action) {
  schedule_at(now_ + delay, std::move(action));
}

void Simulator::schedule_at(Cycle when, std::function<void()> action) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: timestamp in the past");
  }
  queue_.push(when, std::move(action));
}

Cycle Simulator::run() {
  while (!queue_.empty()) {
    // Advance the clock BEFORE dispatching: actions must observe their
    // own timestamp through now() and schedule relative to it.
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++events_executed_;
  }
  return now_;
}

Cycle Simulator::run_until(Cycle deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++events_executed_;
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace edgemm::sim
