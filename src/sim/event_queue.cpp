#include "sim/event_queue.hpp"

#include "common/assert.hpp"

namespace edgemm::sim {

void EventQueue::push(Cycle when, Action action) {
  heap_.push(Entry{when, next_seq_++, std::move(action)});
}

Cycle EventQueue::next_time() const {
  EDGEMM_ASSERT(!heap_.empty());
  return heap_.top().when;
}

Cycle EventQueue::pop_and_run() {
  EDGEMM_ASSERT(!heap_.empty());
  // Copy out before pop: the action may push new events.
  Entry top = heap_.top();
  heap_.pop();
  top.action();
  return top.when;
}

}  // namespace edgemm::sim
