// Discrete-event queue: the heart of the timing simulator.
#ifndef EDGEMM_SIM_EVENT_QUEUE_HPP
#define EDGEMM_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace edgemm::sim {

/// Time-ordered queue of callbacks. Events at equal timestamps fire in
/// insertion order (a strict tie-break keeps runs deterministic).
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `when`.
  void push(Cycle when, Action action);

  /// True when no events remain.
  bool empty() const { return heap_.empty(); }

  std::size_t size() const { return heap_.size(); }

  /// Timestamp of the earliest event; queue must be non-empty.
  Cycle next_time() const;

  /// Removes and runs the earliest event; returns its timestamp.
  /// Queue must be non-empty.
  Cycle pop_and_run();

 private:
  struct Entry {
    Cycle when;
    std::uint64_t seq;  // insertion order; breaks timestamp ties
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace edgemm::sim

#endif  // EDGEMM_SIM_EVENT_QUEUE_HPP
