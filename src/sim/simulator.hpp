// Discrete-event simulator: owns the clock and the event queue.
#ifndef EDGEMM_SIM_SIMULATOR_HPP
#define EDGEMM_SIM_SIMULATOR_HPP

#include <functional>

#include "common/types.hpp"
#include "sim/event_queue.hpp"

namespace edgemm::sim {

/// Single-clock-domain discrete-event simulator.
///
/// Components schedule callbacks at relative delays; run() drains the
/// queue, advancing `now()` monotonically. There is deliberately no
/// global instance — a Simulator is a value owned by whoever runs an
/// experiment (C++ Core Guidelines I.3: avoid singletons).
class Simulator {
 public:
  /// Current simulation time in cycles.
  Cycle now() const { return now_; }

  /// Schedules `action` to run `delay` cycles from now.
  void schedule(Cycle delay, std::function<void()> action);

  /// Schedules `action` at an absolute timestamp; must be >= now().
  void schedule_at(Cycle when, std::function<void()> action);

  /// Runs until the queue is empty. Returns the final time.
  Cycle run();

  /// Runs until the queue is empty or `deadline` is passed; events at
  /// exactly `deadline` still execute. Returns the final time.
  Cycle run_until(Cycle deadline);

  /// Number of events executed so far (for tests and sanity checks).
  std::uint64_t events_executed() const { return events_executed_; }

  bool idle() const { return queue_.empty(); }

 private:
  Cycle now_ = 0;
  std::uint64_t events_executed_ = 0;
  EventQueue queue_;
};

}  // namespace edgemm::sim

#endif  // EDGEMM_SIM_SIMULATOR_HPP
