#include "isa/encoding.hpp"

#include <stdexcept>
#include <string>

namespace edgemm::isa {

namespace {

void check_field(std::uint32_t value, std::uint32_t width, const char* name) {
  if (value >= (1u << width)) {
    throw std::invalid_argument(std::string("encode: field out of range: ") + name);
  }
}

constexpr std::uint32_t bits(std::uint32_t word, int hi, int lo) {
  return (word >> lo) & ((1u << (hi - lo + 1)) - 1u);
}

}  // namespace

std::uint32_t encode(const Fields& f) {
  std::uint32_t word = 0;
  switch (f.format) {
    case Format::kMatrixMatrix:
      // opcode[6:0] size[9:7] func3[14:12] md[17:15] ms1[20:18] ms2[23:21]
      // uop[26:25] func[31:27]
      check_field(f.size, 3, "size");
      check_field(f.func3, 3, "func3");
      check_field(f.md, 3, "md");
      check_field(f.ms1, 3, "ms1");
      check_field(f.ms2, 3, "ms2");
      check_field(f.uop, 2, "uop");
      check_field(f.func, 5, "func");
      word = kOpcodeMatrixMatrix | (std::uint32_t{f.size} << 7) |
             (std::uint32_t{f.func3} << 12) | (std::uint32_t{f.md} << 15) |
             (std::uint32_t{f.ms1} << 18) | (std::uint32_t{f.ms2} << 21) |
             (std::uint32_t{f.uop} << 25) | (std::uint32_t{f.func} << 27);
      break;
    case Format::kMatrixVector:
      // opcode[6:0] vd[11:7] func3[14:12] rs1[19:15] vs1[24:20] uop[26:25]
      // func[31:27]
      check_field(f.vd, 5, "vd");
      check_field(f.func3, 3, "func3");
      check_field(f.rs1, 5, "rs1");
      check_field(f.vs1, 5, "vs1");
      check_field(f.uop, 2, "uop");
      check_field(f.func, 5, "func");
      word = kOpcodeMatrixVector | (std::uint32_t{f.vd} << 7) |
             (std::uint32_t{f.func3} << 12) | (std::uint32_t{f.rs1} << 15) |
             (std::uint32_t{f.vs1} << 20) | (std::uint32_t{f.uop} << 25) |
             (std::uint32_t{f.func} << 27);
      break;
    case Format::kVectorVector:
      // opcode[6:0] vd[11:7] func3[14:12] vs1[19:15] vs2[24:20] uop[26:25]
      // func[31:27]
      check_field(f.vd, 5, "vd");
      check_field(f.func3, 3, "func3");
      check_field(f.vs1, 5, "vs1");
      check_field(f.vs2, 5, "vs2");
      check_field(f.uop, 2, "uop");
      check_field(f.func, 5, "func");
      word = kOpcodeVectorVector | (std::uint32_t{f.vd} << 7) |
             (std::uint32_t{f.func3} << 12) | (std::uint32_t{f.vs1} << 15) |
             (std::uint32_t{f.vs2} << 20) | (std::uint32_t{f.uop} << 25) |
             (std::uint32_t{f.func} << 27);
      break;
    case Format::kConfig:
      // opcode[6:0] size[9:7] func3[14:12] csr[19:15] rs1[24:20] uop[26:25]
      // func[31:27]
      check_field(f.size, 3, "size");
      check_field(f.func3, 3, "func3");
      check_field(f.csr, 5, "csr");
      check_field(f.rs1, 5, "rs1");
      check_field(f.uop, 2, "uop");
      check_field(f.func, 5, "func");
      word = kOpcodeConfig | (std::uint32_t{f.size} << 7) |
             (std::uint32_t{f.func3} << 12) | (std::uint32_t{f.csr} << 15) |
             (std::uint32_t{f.rs1} << 20) | (std::uint32_t{f.uop} << 25) |
             (std::uint32_t{f.func} << 27);
      break;
  }
  return word;
}

bool decode(std::uint32_t word, Fields& out) {
  const std::uint32_t opcode = bits(word, 6, 0);
  Fields f;
  switch (opcode) {
    case kOpcodeMatrixMatrix:
      f.format = Format::kMatrixMatrix;
      f.size = static_cast<std::uint8_t>(bits(word, 9, 7));
      f.func3 = static_cast<std::uint8_t>(bits(word, 14, 12));
      f.md = static_cast<std::uint8_t>(bits(word, 17, 15));
      f.ms1 = static_cast<std::uint8_t>(bits(word, 20, 18));
      f.ms2 = static_cast<std::uint8_t>(bits(word, 23, 21));
      break;
    case kOpcodeMatrixVector:
      f.format = Format::kMatrixVector;
      f.vd = static_cast<std::uint8_t>(bits(word, 11, 7));
      f.func3 = static_cast<std::uint8_t>(bits(word, 14, 12));
      f.rs1 = static_cast<std::uint8_t>(bits(word, 19, 15));
      f.vs1 = static_cast<std::uint8_t>(bits(word, 24, 20));
      break;
    case kOpcodeVectorVector:
      f.format = Format::kVectorVector;
      f.vd = static_cast<std::uint8_t>(bits(word, 11, 7));
      f.func3 = static_cast<std::uint8_t>(bits(word, 14, 12));
      f.vs1 = static_cast<std::uint8_t>(bits(word, 19, 15));
      f.vs2 = static_cast<std::uint8_t>(bits(word, 24, 20));
      break;
    case kOpcodeConfig:
      f.format = Format::kConfig;
      f.size = static_cast<std::uint8_t>(bits(word, 9, 7));
      f.func3 = static_cast<std::uint8_t>(bits(word, 14, 12));
      f.csr = static_cast<std::uint8_t>(bits(word, 19, 15));
      f.rs1 = static_cast<std::uint8_t>(bits(word, 24, 20));
      break;
    default:
      return false;
  }
  f.uop = static_cast<std::uint8_t>(bits(word, 26, 25));
  f.func = static_cast<std::uint8_t>(bits(word, 31, 27));
  out = f;
  return true;
}

bool is_extension_word(std::uint32_t word) {
  const std::uint32_t opcode = word & 0x7Fu;
  return opcode == kOpcodeMatrixMatrix || opcode == kOpcodeMatrixVector ||
         opcode == kOpcodeVectorVector || opcode == kOpcodeConfig;
}

}  // namespace edgemm::isa
