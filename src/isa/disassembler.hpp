// Disassembly of extension words back to canonical assembly text.
#ifndef EDGEMM_ISA_DISASSEMBLER_HPP
#define EDGEMM_ISA_DISASSEMBLER_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace edgemm::isa {

/// Renders one word. Unknown extension encodings disassemble to
/// ".word 0x........"; non-extension words likewise.
std::string disassemble_word(std::uint32_t word);

/// Renders a program, one line per word.
std::string disassemble(const std::vector<std::uint32_t>& words);

}  // namespace edgemm::isa

#endif  // EDGEMM_ISA_DISASSEMBLER_HPP
