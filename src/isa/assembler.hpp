// Two-way translation between assembly text and extension words.
//
// The extension has no control flow of its own — the RISC-V host core
// supplies loops and branches (paper §III-C: "extended instructions can
// be utilized by customized kernel functions ... without internal
// modification of the compiler"). The assembler therefore maps one line
// to one 32-bit word.
//
// Operand syntax:
//   matrix registers   m0..m7      (4 implemented; field is 3 bits wide)
//   vector registers   v0..v31
//   scalar registers   x0..x31     (host core GPRs)
//   LSU address slots  a0..a7      (coprocessor address registers, M-M ld/st)
//   memory operand     (xN)        (base address for M-V CIM ops)
//   CSR names          coreid, coretype, clusterid, groupid, corepos,
//                      shapem, shapen, shapek, prunet, prunek,
//                      prunecount, syncepoch
//   act selectors      relu, silu, gelu      (vv.act)
//   cvt selectors      bf16, int8, fp32      (vv.cvt)
//
// Comments run from '#' or "//" to end of line; blank lines are skipped.
#ifndef EDGEMM_ISA_ASSEMBLER_HPP
#define EDGEMM_ISA_ASSEMBLER_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "isa/csr.hpp"
#include "isa/instructions.hpp"

namespace edgemm::isa {

/// Error with 1-based line number context.
class AssemblerError : public std::runtime_error {
 public:
  AssemblerError(std::size_t line, const std::string& message);
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Assembles one instruction; throws AssemblerError (line = 1) on any
/// syntax or range problem.
std::uint32_t assemble_line(std::string_view line);

/// Assembles a whole program, one instruction per non-empty line.
std::vector<std::uint32_t> assemble(std::string_view source);

/// Returns the CSR enum for an assembly-level CSR name, if known.
std::optional<Csr> csr_from_name(std::string_view name);

/// Inverse of csr_from_name; "csr?" for unmapped selectors.
std::string_view csr_name(Csr csr);

}  // namespace edgemm::isa

#endif  // EDGEMM_ISA_ASSEMBLER_HPP
