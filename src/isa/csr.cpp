#include "isa/csr.hpp"

#include <stdexcept>

namespace edgemm::isa {

namespace {
constexpr std::size_t index_of(Csr csr) { return static_cast<std::size_t>(csr); }
}  // namespace

CsrFile::CsrFile(CoreId core_id, CoreKind core_type, ClusterId cluster_id,
                 std::uint32_t group_id, std::uint32_t core_pos) {
  regs_[index_of(Csr::kCoreId)] = core_id;
  regs_[index_of(Csr::kCoreType)] = core_type == CoreKind::kMemoryCentric ? 1 : 0;
  regs_[index_of(Csr::kClusterId)] = cluster_id;
  regs_[index_of(Csr::kGroupId)] = group_id;
  regs_[index_of(Csr::kCorePos)] = core_pos;
  regs_[index_of(Csr::kPruneThresh)] = 16;  // paper's fixed t (§IV-A)
}

std::uint32_t CsrFile::read(Csr csr) const {
  if (index_of(csr) >= kCsrCount) {
    throw std::out_of_range("CsrFile::read: CSR out of map");
  }
  return regs_[index_of(csr)];
}

void CsrFile::write(Csr csr, std::uint32_t value) {
  if (index_of(csr) >= kCsrCount) {
    throw std::out_of_range("CsrFile::write: CSR out of map");
  }
  if (is_read_only(csr)) {
    throw std::invalid_argument("CsrFile::write: CSR is read-only");
  }
  regs_[index_of(csr)] = value;
}

bool CsrFile::is_read_only(Csr csr) {
  switch (csr) {
    case Csr::kCoreId:
    case Csr::kCoreType:
    case Csr::kClusterId:
    case Csr::kGroupId:
    case Csr::kCorePos:
    case Csr::kPruneCount:
    case Csr::kSyncEpoch:
      return true;
    default:
      return false;
  }
}

void CsrFile::bump_sync_epoch() { ++regs_[index_of(Csr::kSyncEpoch)]; }

void CsrFile::set_prune_count(std::uint32_t n) {
  regs_[index_of(Csr::kPruneCount)] = n;
}

}  // namespace edgemm::isa
