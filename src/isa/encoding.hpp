// Bit-level encodings of the EdgeMM AI-extension instructions (Fig. 7).
//
// The paper extends RISC-V with four formats riding on the custom
// opcode space:
//
//   M-M    matrix–matrix      (CC-core; matrix registers md/ms1/ms2)
//   M-V    matrix–vector      (MC-core; vd/vs1 vector regs, rs1 holds the
//                              base address of the matrix operand)
//   V-V    vector–vector      (all cores; activation / precision ops)
//   Config CSR configuration  (runtime shape & pruning parameters)
//
// Field boundaries follow Fig. 7 as closely as its published positions
// allow; where the figure is ambiguous the standard RISC-V field homes
// (opcode [6:0], func3 [14:12], rd/vd [11:7], rs1 [19:15], rs2/vs1
// [24:20]) are used so the extension coexists with the base ISA decoder.
#ifndef EDGEMM_ISA_ENCODING_HPP
#define EDGEMM_ISA_ENCODING_HPP

#include <cstdint>

namespace edgemm::isa {

/// The four extension formats of Fig. 7.
enum class Format : std::uint8_t { kMatrixMatrix, kMatrixVector, kVectorVector, kConfig };

constexpr const char* to_string(Format f) {
  switch (f) {
    case Format::kMatrixMatrix: return "M-M";
    case Format::kMatrixVector: return "M-V";
    case Format::kVectorVector: return "V-V";
    case Format::kConfig: return "Config";
  }
  return "?";
}

/// RISC-V custom major opcodes hosting the extension.
inline constexpr std::uint32_t kOpcodeMatrixMatrix = 0x0B;  // custom-0
inline constexpr std::uint32_t kOpcodeMatrixVector = 0x2B;  // custom-1
inline constexpr std::uint32_t kOpcodeVectorVector = 0x5B;  // custom-2
inline constexpr std::uint32_t kOpcodeConfig = 0x7B;        // custom-3

/// Decoded field view of one 32-bit extension instruction.
/// Unused fields for a given format are zero.
struct Fields {
  Format format = Format::kMatrixMatrix;
  std::uint8_t size = 0;   ///< element-size selector (M-M / Config), 3 bits
  std::uint8_t func3 = 0;  ///< minor opcode, 3 bits
  std::uint8_t md = 0;     ///< destination matrix register, 3 bits
  std::uint8_t ms1 = 0;    ///< source matrix register 1, 3 bits
  std::uint8_t ms2 = 0;    ///< source matrix register 2, 3 bits
  std::uint8_t vd = 0;     ///< destination vector register, 5 bits
  std::uint8_t vs1 = 0;    ///< source vector register 1, 5 bits
  std::uint8_t vs2 = 0;    ///< source vector register 2, 5 bits
  std::uint8_t rs1 = 0;    ///< scalar register (matrix base address), 5 bits
  std::uint8_t csr = 0;    ///< CSR selector (Config format), 5 bits
  std::uint8_t uop = 0;    ///< micro-op selector, 2 bits
  std::uint8_t func = 0;   ///< major function, 5 bits
};

/// Packs fields into a 32-bit word. Field-range violations throw
/// std::invalid_argument (they indicate an assembler bug upstream).
std::uint32_t encode(const Fields& fields);

/// Unpacks a 32-bit word. Returns false if the major opcode does not
/// belong to the extension space.
bool decode(std::uint32_t word, Fields& out);

/// True if `word` carries one of the four extension opcodes.
bool is_extension_word(std::uint32_t word);

}  // namespace edgemm::isa

#endif  // EDGEMM_ISA_ENCODING_HPP
