#include "isa/assembler.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>
#include <utility>

namespace edgemm::isa {

namespace {

constexpr std::array<std::pair<std::string_view, Csr>, 12> kCsrNames = {{
    {"coreid", Csr::kCoreId},
    {"coretype", Csr::kCoreType},
    {"clusterid", Csr::kClusterId},
    {"groupid", Csr::kGroupId},
    {"corepos", Csr::kCorePos},
    {"shapem", Csr::kShapeM},
    {"shapen", Csr::kShapeN},
    {"shapek", Csr::kShapeK},
    {"prunet", Csr::kPruneThresh},
    {"prunek", Csr::kPruneK},
    {"prunecount", Csr::kPruneCount},
    {"syncepoch", Csr::kSyncEpoch},
}};

std::string_view strip(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

std::string_view strip_comment(std::string_view line) {
  const std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  const std::size_t slashes = line.find("//");
  if (slashes != std::string_view::npos) line = line.substr(0, slashes);
  return line;
}

std::vector<std::string_view> split_operands(std::string_view rest) {
  std::vector<std::string_view> out;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view tok =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    tok = strip(tok);
    if (!tok.empty()) out.push_back(tok);
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return out;
}

/// Parses "m3" / "v12" / "x7" / "a2" style register tokens.
std::uint8_t parse_reg(std::string_view tok, char prefix, unsigned max_index,
                       std::size_t line_no) {
  if (tok.size() < 2 || tok[0] != prefix) {
    throw AssemblerError(line_no, "expected register '" + std::string(1, prefix) +
                                      "N', got '" + std::string(tok) + "'");
  }
  unsigned value = 0;
  const auto* first = tok.data() + 1;
  const auto* last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || value > max_index) {
    throw AssemblerError(line_no, "bad register index in '" + std::string(tok) + "'");
  }
  return static_cast<std::uint8_t>(value);
}

/// Parses "(xN)" memory operands.
std::uint8_t parse_mem(std::string_view tok, std::size_t line_no) {
  if (tok.size() < 4 || tok.front() != '(' || tok.back() != ')') {
    throw AssemblerError(line_no, "expected memory operand '(xN)', got '" +
                                      std::string(tok) + "'");
  }
  return parse_reg(strip(tok.substr(1, tok.size() - 2)), 'x', 31, line_no);
}

std::uint8_t parse_act_uop(std::string_view tok, std::size_t line_no) {
  if (tok == "relu") return static_cast<std::uint8_t>(ActUop::kRelu);
  if (tok == "silu") return static_cast<std::uint8_t>(ActUop::kSilu);
  if (tok == "gelu") return static_cast<std::uint8_t>(ActUop::kGelu);
  throw AssemblerError(line_no, "unknown activation '" + std::string(tok) + "'");
}

std::uint8_t parse_cvt_uop(std::string_view tok, std::size_t line_no) {
  if (tok == "bf16") return 0;
  if (tok == "int8") return 1;
  if (tok == "fp32") return 2;
  throw AssemblerError(line_no, "unknown conversion '" + std::string(tok) + "'");
}

std::uint32_t assemble_impl(std::string_view line, std::size_t line_no) {
  line = strip(strip_comment(line));
  const std::size_t space = line.find_first_of(" \t");
  const std::string_view name =
      space == std::string_view::npos ? line : line.substr(0, space);
  const std::string_view rest =
      space == std::string_view::npos ? std::string_view{} : line.substr(space + 1);

  const auto mnemonic = mnemonic_from_name(name);
  if (!mnemonic) {
    throw AssemblerError(line_no, "unknown mnemonic '" + std::string(name) + "'");
  }
  const InstrInfo& instr = info(*mnemonic);
  const auto operands = split_operands(rest);
  auto expect = [&](std::size_t n) {
    if (operands.size() != n) {
      throw AssemblerError(line_no, std::string(instr.name) + ": expected " +
                                        std::to_string(n) + " operands, got " +
                                        std::to_string(operands.size()));
    }
  };

  Fields f;
  f.format = instr.format;
  f.func = instr.func;
  f.func3 = instr.func3;

  switch (*mnemonic) {
    case Mnemonic::kMmMul:
    case Mnemonic::kMmAdd:
      expect(3);
      f.md = parse_reg(operands[0], 'm', 7, line_no);
      f.ms1 = parse_reg(operands[1], 'm', 7, line_no);
      f.ms2 = parse_reg(operands[2], 'm', 7, line_no);
      break;
    case Mnemonic::kMmLd:
    case Mnemonic::kMmSt:
      expect(2);
      f.md = parse_reg(operands[0], 'm', 7, line_no);
      f.ms1 = parse_reg(operands[1], 'a', 7, line_no);  // LSU address slot
      break;
    case Mnemonic::kMmZero:
      expect(1);
      f.md = parse_reg(operands[0], 'm', 7, line_no);
      break;
    case Mnemonic::kMvMul:
      expect(3);
      f.vd = parse_reg(operands[0], 'v', 31, line_no);
      f.vs1 = parse_reg(operands[1], 'v', 31, line_no);
      f.rs1 = parse_mem(operands[2], line_no);
      break;
    case Mnemonic::kMvLdw:
      expect(1);
      f.rs1 = parse_mem(operands[0], line_no);
      break;
    case Mnemonic::kMvPrune:
      expect(2);
      f.vd = parse_reg(operands[0], 'v', 31, line_no);
      f.vs1 = parse_reg(operands[1], 'v', 31, line_no);
      break;
    case Mnemonic::kVvAdd:
    case Mnemonic::kVvMul:
    case Mnemonic::kVvMax:
      expect(3);
      f.vd = parse_reg(operands[0], 'v', 31, line_no);
      f.vs1 = parse_reg(operands[1], 'v', 31, line_no);
      f.vs2 = parse_reg(operands[2], 'v', 31, line_no);
      break;
    case Mnemonic::kVvAct:
      expect(3);
      f.vd = parse_reg(operands[0], 'v', 31, line_no);
      f.vs1 = parse_reg(operands[1], 'v', 31, line_no);
      f.uop = parse_act_uop(operands[2], line_no);
      break;
    case Mnemonic::kVvCvt:
      expect(3);
      f.vd = parse_reg(operands[0], 'v', 31, line_no);
      f.vs1 = parse_reg(operands[1], 'v', 31, line_no);
      f.uop = parse_cvt_uop(operands[2], line_no);
      break;
    case Mnemonic::kCfgCsrW:
    case Mnemonic::kCfgCsrR: {
      expect(2);
      const auto csr = csr_from_name(operands[0]);
      if (!csr) {
        throw AssemblerError(line_no, "unknown CSR '" + std::string(operands[0]) + "'");
      }
      f.csr = static_cast<std::uint8_t>(*csr);
      f.rs1 = parse_reg(operands[1], 'x', 31, line_no);
      break;
    }
    case Mnemonic::kCfgSync:
      expect(0);
      break;
  }
  return encode(f);
}

}  // namespace

AssemblerError::AssemblerError(std::size_t line, const std::string& message)
    : std::runtime_error("line " + std::to_string(line) + ": " + message),
      line_(line) {}

std::uint32_t assemble_line(std::string_view line) { return assemble_impl(line, 1); }

std::vector<std::uint32_t> assemble(std::string_view source) {
  std::vector<std::uint32_t> words;
  std::size_t line_no = 0;
  while (!source.empty()) {
    ++line_no;
    const std::size_t nl = source.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? source : source.substr(0, nl);
    source = nl == std::string_view::npos ? std::string_view{} : source.substr(nl + 1);
    if (strip(strip_comment(line)).empty()) continue;
    words.push_back(assemble_impl(line, line_no));
  }
  return words;
}

std::optional<Csr> csr_from_name(std::string_view name) {
  for (const auto& [csr_name_entry, csr] : kCsrNames) {
    if (csr_name_entry == name) return csr;
  }
  return std::nullopt;
}

std::string_view csr_name(Csr csr) {
  for (const auto& [name, entry] : kCsrNames) {
    if (entry == csr) return name;
  }
  return "csr?";
}

}  // namespace edgemm::isa
