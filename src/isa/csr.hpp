// Control-and-status registers of the EdgeMM programming model (§III-C).
//
// Each core exposes read-only identity CSRs (its index and type) so
// kernels can compute the address offsets of their tensor shards, plus
// writable runtime-shape and pruning CSRs consumed by the coprocessors.
#ifndef EDGEMM_ISA_CSR_HPP
#define EDGEMM_ISA_CSR_HPP

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace edgemm::isa {

/// CSR address map (5-bit selector space of the Config format).
enum class Csr : std::uint8_t {
  kCoreId = 0x00,      ///< RO: global core index
  kCoreType = 0x01,    ///< RO: 0 = CC, 1 = MC
  kClusterId = 0x02,   ///< RO: global cluster index
  kGroupId = 0x03,     ///< RO: group index
  kCorePos = 0x04,     ///< RO: position of the core inside its cluster
  kShapeM = 0x08,      ///< RW: GEMM/GEMV M dimension for the next op
  kShapeN = 0x09,      ///< RW: N dimension
  kShapeK = 0x0A,      ///< RW: K dimension
  kPruneThresh = 0x10, ///< RW: pruning threshold t (Alg. 1; default 16)
  kPruneK = 0x11,      ///< RW: current top-k budget k
  kPruneCount = 0x12,  ///< RO: n reported by the th-mask after mv.prune
  kSyncEpoch = 0x18,   ///< RO: barrier epoch counter
};

inline constexpr std::size_t kCsrCount = 32;

/// One core's CSR file. Read-only registers reject writes with
/// std::invalid_argument (software is expected to know the map).
class CsrFile {
 public:
  /// Identity registers are fixed at construction (they are wired
  /// constants in hardware).
  CsrFile(CoreId core_id, CoreKind core_type, ClusterId cluster_id,
          std::uint32_t group_id, std::uint32_t core_pos);

  std::uint32_t read(Csr csr) const;
  void write(Csr csr, std::uint32_t value);

  /// True for the hard-wired identity registers.
  static bool is_read_only(Csr csr);

  /// Bumped by the cluster barrier; visible through kSyncEpoch.
  void bump_sync_epoch();

  /// Written by the pruner hardware (not by software).
  void set_prune_count(std::uint32_t n);

 private:
  std::array<std::uint32_t, kCsrCount> regs_{};
};

}  // namespace edgemm::isa

#endif  // EDGEMM_ISA_CSR_HPP
