#include "isa/instructions.hpp"

#include <array>

#include "common/assert.hpp"

namespace edgemm::isa {

namespace {

// func values partition the 5-bit space per format; func3 further selects
// within a func group. uop is 0 unless the instruction uses it as an
// operand (vv.act / vv.cvt) — see Fig. 7.
constexpr std::array<InstrInfo, 16> kTable = {{
    {Mnemonic::kMmMul, "mm.mul", Format::kMatrixMatrix, 0x01, 0, false},
    {Mnemonic::kMmLd, "mm.ld", Format::kMatrixMatrix, 0x02, 0, false},
    {Mnemonic::kMmSt, "mm.st", Format::kMatrixMatrix, 0x02, 1, false},
    {Mnemonic::kMmZero, "mm.zero", Format::kMatrixMatrix, 0x03, 0, false},
    {Mnemonic::kMmAdd, "mm.add", Format::kMatrixMatrix, 0x04, 0, false},
    {Mnemonic::kMvMul, "mv.mul", Format::kMatrixVector, 0x01, 0, false},
    {Mnemonic::kMvLdw, "mv.ldw", Format::kMatrixVector, 0x02, 0, false},
    {Mnemonic::kMvPrune, "mv.prune", Format::kMatrixVector, 0x03, 0, false},
    {Mnemonic::kVvAdd, "vv.add", Format::kVectorVector, 0x01, 0, false},
    {Mnemonic::kVvMul, "vv.mul", Format::kVectorVector, 0x01, 1, false},
    {Mnemonic::kVvMax, "vv.max", Format::kVectorVector, 0x01, 2, false},
    {Mnemonic::kVvAct, "vv.act", Format::kVectorVector, 0x02, 0, true},
    {Mnemonic::kVvCvt, "vv.cvt", Format::kVectorVector, 0x03, 0, true},
    {Mnemonic::kCfgCsrW, "cfg.csrw", Format::kConfig, 0x01, 0, false},
    {Mnemonic::kCfgCsrR, "cfg.csrr", Format::kConfig, 0x01, 1, false},
    {Mnemonic::kCfgSync, "cfg.sync", Format::kConfig, 0x02, 0, false},
}};

}  // namespace

std::span<const InstrInfo> instruction_table() { return kTable; }

const InstrInfo& info(Mnemonic m) {
  for (const InstrInfo& entry : kTable) {
    if (entry.mnemonic == m) return entry;
  }
  EDGEMM_ASSERT_MSG(false, "unknown mnemonic enum");
  return kTable[0];  // unreachable
}

std::optional<Mnemonic> mnemonic_from_name(std::string_view name) {
  for (const InstrInfo& entry : kTable) {
    if (entry.name == name) return entry.mnemonic;
  }
  return std::nullopt;
}

std::optional<Mnemonic> mnemonic_from_fields(const Fields& fields) {
  for (const InstrInfo& entry : kTable) {
    if (entry.format == fields.format && entry.func == fields.func &&
        entry.func3 == fields.func3) {
      return entry.mnemonic;
    }
  }
  return std::nullopt;
}

}  // namespace edgemm::isa
