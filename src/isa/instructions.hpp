// Instruction set of the EdgeMM AI extension: mnemonics, their formats,
// and their fixed func/uop selectors.
#ifndef EDGEMM_ISA_INSTRUCTIONS_HPP
#define EDGEMM_ISA_INSTRUCTIONS_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "isa/encoding.hpp"

namespace edgemm::isa {

/// Every extension instruction implemented by EdgeMM.
///
/// CC-core (M-M, Fig. 5): matrix loads/stores through the coprocessor's
/// private LSU, weight-stationary GEMM, and element-wise matrix ops.
/// MC-core (M-V, Fig. 6/8): CIM weight load, CIM GEMV, and the hardware
/// activation-aware pruner.
/// All cores (V-V): the vector subset used for activation functions and
/// precision conversion. Config reads/writes the runtime CSRs.
enum class Mnemonic : std::uint8_t {
  // M-M — CC-core matrix instructions.
  kMmMul,    ///< mm.mul  md, ms1, ms2 : md += ms1 × ms2 (weight-stationary)
  kMmLd,     ///< mm.ld   md, ms1      : load matrix register (LSU)
  kMmSt,     ///< mm.st   md, ms1      : store matrix register (LSU)
  kMmZero,   ///< mm.zero md           : clear accumulator tile
  kMmAdd,    ///< mm.add  md, ms1, ms2 : element-wise tile add
  // M-V — MC-core matrix-vector instructions.
  kMvMul,    ///< mv.mul  vd, vs1, (rs1) : vd = vs1 × CIM[rs1] (bit-serial)
  kMvLdw,    ///< mv.ldw  (rs1)          : load weight tile into CIM macro
  kMvPrune,  ///< mv.prune vd, vs1       : hardware act-aware pruner (Alg. 1)
  // V-V — vector subset.
  kVvAdd,    ///< vv.add vd, vs1, vs2
  kVvMul,    ///< vv.mul vd, vs1, vs2 (element-wise; gating in Eq. 1)
  kVvMax,    ///< vv.max vd, vs1, vs2
  kVvAct,    ///< vv.act vd, vs1      (uop selects ReLU / SiLU / GELU)
  kVvCvt,    ///< vv.cvt vd, vs1      (uop selects precision conversion)
  // Config.
  kCfgCsrW,  ///< cfg.csrw csr, rs1
  kCfgCsrR,  ///< cfg.csrr csr, rs1 (rs1 is the destination scalar here)
  kCfgSync,  ///< cfg.sync — cluster barrier (programming model §III-C)
};

/// Activation-function selector carried in the `uop` field of vv.act.
enum class ActUop : std::uint8_t { kRelu = 0, kSilu = 1, kGelu = 2 };

/// Static description of one mnemonic.
struct InstrInfo {
  Mnemonic mnemonic;
  std::string_view name;   ///< assembly spelling, e.g. "mm.mul"
  Format format;
  std::uint8_t func;       ///< fixed func selector (5 bits)
  std::uint8_t func3;      ///< fixed func3 selector (3 bits)
  bool uop_is_operand;     ///< true when `uop` carries a selector (vv.act/cvt)
};

/// Table of all implemented instructions.
std::span<const InstrInfo> instruction_table();

/// Looks up by mnemonic enum. Never fails for valid enums.
const InstrInfo& info(Mnemonic m);

/// Looks up by assembly spelling; empty if unknown.
std::optional<Mnemonic> mnemonic_from_name(std::string_view name);

/// Recovers the mnemonic from decoded fields; empty if the fields match
/// no implemented instruction.
std::optional<Mnemonic> mnemonic_from_fields(const Fields& fields);

}  // namespace edgemm::isa

#endif  // EDGEMM_ISA_INSTRUCTIONS_HPP
