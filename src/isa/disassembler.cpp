#include "isa/disassembler.hpp"

#include <cstdio>

#include "isa/assembler.hpp"
#include "isa/encoding.hpp"
#include "isa/instructions.hpp"

namespace edgemm::isa {

namespace {

std::string raw_word(std::uint32_t word) {
  char buf[24];
  std::snprintf(buf, sizeof buf, ".word 0x%08x", word);
  return buf;
}

std::string reg(char prefix, unsigned index) {
  return std::string(1, prefix) + std::to_string(index);
}

std::string_view act_name(std::uint8_t uop) {
  switch (static_cast<ActUop>(uop)) {
    case ActUop::kRelu: return "relu";
    case ActUop::kSilu: return "silu";
    case ActUop::kGelu: return "gelu";
  }
  return "act?";
}

std::string_view cvt_name(std::uint8_t uop) {
  switch (uop) {
    case 0: return "bf16";
    case 1: return "int8";
    case 2: return "fp32";
    default: return "cvt?";
  }
}

}  // namespace

std::string disassemble_word(std::uint32_t word) {
  Fields f;
  if (!decode(word, f)) return raw_word(word);
  const auto mnemonic = mnemonic_from_fields(f);
  if (!mnemonic) return raw_word(word);
  const InstrInfo& instr = info(*mnemonic);
  const std::string name(instr.name);

  switch (*mnemonic) {
    case Mnemonic::kMmMul:
    case Mnemonic::kMmAdd:
      return name + " " + reg('m', f.md) + ", " + reg('m', f.ms1) + ", " +
             reg('m', f.ms2);
    case Mnemonic::kMmLd:
    case Mnemonic::kMmSt:
      return name + " " + reg('m', f.md) + ", " + reg('a', f.ms1);
    case Mnemonic::kMmZero:
      return name + " " + reg('m', f.md);
    case Mnemonic::kMvMul:
      return name + " " + reg('v', f.vd) + ", " + reg('v', f.vs1) + ", (" +
             reg('x', f.rs1) + ")";
    case Mnemonic::kMvLdw:
      return name + " (" + reg('x', f.rs1) + ")";
    case Mnemonic::kMvPrune:
      return name + " " + reg('v', f.vd) + ", " + reg('v', f.vs1);
    case Mnemonic::kVvAdd:
    case Mnemonic::kVvMul:
    case Mnemonic::kVvMax:
      return name + " " + reg('v', f.vd) + ", " + reg('v', f.vs1) + ", " +
             reg('v', f.vs2);
    case Mnemonic::kVvAct:
      return name + " " + reg('v', f.vd) + ", " + reg('v', f.vs1) + ", " +
             std::string(act_name(f.uop));
    case Mnemonic::kVvCvt:
      return name + " " + reg('v', f.vd) + ", " + reg('v', f.vs1) + ", " +
             std::string(cvt_name(f.uop));
    case Mnemonic::kCfgCsrW:
    case Mnemonic::kCfgCsrR:
      return name + " " + std::string(csr_name(static_cast<Csr>(f.csr))) + ", " +
             reg('x', f.rs1);
    case Mnemonic::kCfgSync:
      return name;
  }
  return raw_word(word);
}

std::string disassemble(const std::vector<std::uint32_t>& words) {
  std::string out;
  for (const std::uint32_t w : words) {
    out += disassemble_word(w);
    out += '\n';
  }
  return out;
}

}  // namespace edgemm::isa
