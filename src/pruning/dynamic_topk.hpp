// Layer-wise dynamic Top-k pruning — Algorithm 1 of the paper.
//
//   for layers in model:
//     if layer index == 1: k = d            // no pruning on the first layer
//     V'x = top-k(Vx, k)
//     W'  = pruning(W, index(V'x))
//     GEMV(W', V'x)
//     n = count(Vx[i] > max(Vx[i]) / t)
//     if n < k: k = n                       // k decreases with depth
//
// The controller walks the decoder layers of one token generation,
// handing each layer its current budget k and folding the observed
// channel count n back in. t is fixed (16 in the paper's design).
#ifndef EDGEMM_PRUNING_DYNAMIC_TOPK_HPP
#define EDGEMM_PRUNING_DYNAMIC_TOPK_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace edgemm::pruning {

/// Controller parameters.
struct DynamicTopKConfig {
  double threshold_t = 16.0;    ///< negligibility threshold (paper: 16)
  bool skip_first_layer = true; ///< §V-C: pruning layer 1 wrecks accuracy
};

/// Per-token, per-layer budget controller. One instance per decoding
/// stream; call begin_token() before each generated token.
class DynamicTopK {
 public:
  /// `dim` is the activation channel count d. Throws
  /// std::invalid_argument for t <= 0 or dim == 0.
  DynamicTopK(const DynamicTopKConfig& config, std::size_t dim);

  /// Resets k to d for a fresh token generation.
  void begin_token();

  /// Budget for `layer` (0-based). The first layer always gets d when
  /// skip_first_layer is set.
  std::size_t k_for_layer(std::size_t layer) const;

  /// Folds the observed n (channels above max/t) back into k.
  void observe(std::size_t n);

  /// Convenience: runs the full Alg. 1 step for one layer's activation
  /// vector — returns the budget used and updates k from the vector's
  /// own statistics.
  std::size_t step(std::size_t layer, std::span<const float> activations);

  std::size_t current_k() const { return k_; }
  double threshold() const { return config_.threshold_t; }

 private:
  DynamicTopKConfig config_;
  std::size_t dim_;
  std::size_t k_;
};

/// Fixed-ratio baseline (the "fixed pruning ratio" curves of Fig. 12(b)):
/// always keeps ceil(d × (1 − ratio)) channels.
std::size_t fixed_ratio_k(std::size_t dim, double prune_ratio);

}  // namespace edgemm::pruning

#endif  // EDGEMM_PRUNING_DYNAMIC_TOPK_HPP
