// Task-level accuracy proxy for pruning — the stand-in for the paper's
// "minimal score reduction in VQA" claim (§V-C).
//
// We cannot score VQA without the trained checkpoint (DESIGN.md §1), so
// the proxy measures what a downstream head would see: a fixed random
// linear "answer head" maps the FFN output to answer logits, and the
// score is the fraction of tokens whose argmax answer is unchanged by
// pruning. Unlike cosine similarity this metric is sensitive exactly to
// the errors that flip decisions.
#ifndef EDGEMM_PRUNING_TASK_PROXY_HPP
#define EDGEMM_PRUNING_TASK_PROXY_HPP

#include <cstdint>
#include <vector>

#include "model/activation_gen.hpp"
#include "pruning/dynamic_topk.hpp"

namespace edgemm::pruning {

/// Proxy-task parameters.
struct TaskProxyConfig {
  std::size_t answer_classes = 64;  ///< rows of the answer head
  std::size_t d_ffn = 512;          ///< hidden width of the evaluated FFN
  std::size_t tokens = 6;           ///< decisions sampled per layer
  std::uint64_t seed = 7;
  DynamicTopKConfig dynamic{};
  std::vector<double> fixed_ratios{0.1, 0.7};
};

/// Agreement scores in [0, 1]; 1 = pruning never flips the answer.
struct TaskProxyResult {
  double agreement_dynamic = 0.0;
  std::vector<double> agreement_fixed;   ///< aligned with fixed_ratios
  double mean_pruning_ratio = 0.0;       ///< achieved by the dynamic scheme
  std::size_t decisions = 0;             ///< total (layer, token) samples
};

/// Runs the proxy over every (stable) layer of `gen`.
TaskProxyResult evaluate_task_proxy(const model::ActivationGenerator& gen,
                                    const TaskProxyConfig& config);

}  // namespace edgemm::pruning

#endif  // EDGEMM_PRUNING_TASK_PROXY_HPP
