#include "pruning/task_proxy.hpp"

#include <algorithm>

#include "common/statistics.hpp"
#include "common/tensor.hpp"
#include "model/ffn.hpp"

namespace edgemm::pruning {

namespace {

std::size_t argmax(std::span<const float> logits) {
  return static_cast<std::size_t>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

std::vector<std::size_t> kept_channels(std::span<const float> v, std::size_t k) {
  auto idx = edgemm::top_k_indices_by_magnitude(v, k);
  std::sort(idx.begin(), idx.end());
  return idx;
}

}  // namespace

TaskProxyResult evaluate_task_proxy(const model::ActivationGenerator& gen,
                                    const TaskProxyConfig& config) {
  const auto& profile = gen.profile();
  const std::size_t d = profile.channels;

  Rng rng(config.seed ^ 0x5bd1e995u);
  // The fixed answer head: answer_classes × d_model logits projection.
  Tensor head(d, config.answer_classes);
  for (float& v : head.flat()) v = static_cast<float>(rng.gaussian(0.0, 1.0));

  TaskProxyResult result;
  result.agreement_fixed.assign(config.fixed_ratios.size(), 0.0);

  double ratio_sum = 0.0;
  for (std::size_t tok = 0; tok < config.tokens; ++tok) {
    DynamicTopK controller(config.dynamic, d);
    controller.begin_token();
    Rng layer_rng = rng.split();
    for (std::size_t layer = 0; layer < profile.layers; ++layer) {
      const auto v = gen.activations(layer, tok);
      const std::size_t k_used = controller.step(layer, v);
      ratio_sum += 1.0 - static_cast<double>(k_used) / static_cast<double>(d);

      Rng weights_rng = layer_rng.split();
      const auto weights = model::random_gated_mlp(d, config.d_ffn, weights_rng);
      const auto dense_out = model::ffn_reference(weights, v);
      const auto dense_answer = argmax(gemv_reference(dense_out, head));

      const auto dyn_out = model::ffn_pruned(weights, v, kept_channels(v, k_used));
      if (argmax(gemv_reference(dyn_out, head)) == dense_answer) {
        result.agreement_dynamic += 1.0;
      }
      for (std::size_t f = 0; f < config.fixed_ratios.size(); ++f) {
        const std::size_t k_fixed = fixed_ratio_k(d, config.fixed_ratios[f]);
        const auto fixed_out =
            model::ffn_pruned(weights, v, kept_channels(v, k_fixed));
        if (argmax(gemv_reference(fixed_out, head)) == dense_answer) {
          result.agreement_fixed[f] += 1.0;
        }
      }
      ++result.decisions;
    }
  }

  const auto n = static_cast<double>(result.decisions);
  result.agreement_dynamic /= n;
  for (double& a : result.agreement_fixed) a /= n;
  result.mean_pruning_ratio = ratio_sum / n;
  return result;
}

}  // namespace edgemm::pruning
