// Evaluation harness for activation-aware pruning — regenerates the
// quantities plotted in Fig. 12:
//   (a) per-layer kurtosis and achieved pruning ratio of the dynamic
//       Top-k scheme over a token generation;
//   (b) per-layer cosine similarity between pruned and unpruned FFN
//       outputs, for dynamic pruning and for fixed ratios.
#ifndef EDGEMM_PRUNING_METRICS_HPP
#define EDGEMM_PRUNING_METRICS_HPP

#include <cstddef>
#include <vector>

#include "model/activation_gen.hpp"
#include "pruning/dynamic_topk.hpp"

namespace edgemm::pruning {

/// Experiment parameters (scaled-down FFN shapes keep the functional
/// evaluation fast; accuracy depends on activation statistics, not
/// absolute width — DESIGN.md §1).
struct PruningEvalConfig {
  std::size_t d_ffn = 1024;       ///< hidden width of the evaluated FFN
  std::size_t tokens = 8;         ///< generated tokens averaged per layer
  std::uint64_t seed = 42;
  DynamicTopKConfig dynamic{};
  std::vector<double> fixed_ratios{0.1, 0.7};  ///< Fig. 12(b) baselines
};

/// One layer's measurements, averaged over the generated tokens.
struct LayerPruningStats {
  std::size_t layer = 0;
  double kurtosis = 0.0;            ///< channel-distribution outlier metric
  double pruning_ratio = 0.0;       ///< 1 − kept/d under dynamic Top-k
  std::size_t k_used = 0;           ///< dynamic budget at this layer (last token)
  double cosine_dynamic = 0.0;      ///< pruned-vs-dense FFN output similarity
  std::vector<double> cosine_fixed; ///< one per PruningEvalConfig::fixed_ratios
};

/// Whole-sweep result.
struct PruningEvalResult {
  std::vector<LayerPruningStats> layers;
  double mean_pruning_ratio = 0.0;   ///< across layers & tokens
  double mean_cosine_dynamic = 0.0;
  std::vector<double> mean_cosine_fixed;
};

/// Runs the Fig. 12 experiment on synthetic activations from `gen`
/// against per-layer random gated-MLP weights.
PruningEvalResult evaluate_pruning(const model::ActivationGenerator& gen,
                                   const PruningEvalConfig& config);

}  // namespace edgemm::pruning

#endif  // EDGEMM_PRUNING_METRICS_HPP
