#include "pruning/dynamic_topk.hpp"

#include <cmath>
#include <stdexcept>

#include "common/statistics.hpp"

namespace edgemm::pruning {

DynamicTopK::DynamicTopK(const DynamicTopKConfig& config, std::size_t dim)
    : config_(config), dim_(dim), k_(dim) {
  if (config.threshold_t <= 0.0) {
    throw std::invalid_argument("DynamicTopK: threshold_t must be > 0");
  }
  if (dim == 0) {
    throw std::invalid_argument("DynamicTopK: dim must be > 0");
  }
}

void DynamicTopK::begin_token() { k_ = dim_; }

std::size_t DynamicTopK::k_for_layer(std::size_t layer) const {
  if (config_.skip_first_layer && layer == 0) return dim_;
  return k_;
}

void DynamicTopK::observe(std::size_t n) {
  if (n < k_) k_ = n;  // Alg. 1: "if n < k: k = n"
}

std::size_t DynamicTopK::step(std::size_t layer, std::span<const float> activations) {
  const std::size_t k_used = k_for_layer(layer);
  // The first layer's distribution is unstable (§V-C) — it is neither
  // pruned nor allowed to drive the budget for the layers below it.
  if (!(config_.skip_first_layer && layer == 0)) {
    observe(count_above_max_over_t(activations, config_.threshold_t));
  }
  return k_used;
}

std::size_t fixed_ratio_k(std::size_t dim, double prune_ratio) {
  if (prune_ratio < 0.0 || prune_ratio > 1.0) {
    throw std::invalid_argument("fixed_ratio_k: ratio must be in [0, 1]");
  }
  const auto kept = static_cast<std::size_t>(
      std::llround(static_cast<double>(dim) * (1.0 - prune_ratio)));
  return kept > 0 ? kept : 1;
}

}  // namespace edgemm::pruning
