#include "pruning/metrics.hpp"

#include <algorithm>

#include "common/statistics.hpp"
#include "model/ffn.hpp"

namespace edgemm::pruning {

namespace {

/// Keeps the k largest-magnitude channels, ascending index order.
std::vector<std::size_t> kept_channels(std::span<const float> v, std::size_t k) {
  auto idx = edgemm::top_k_indices_by_magnitude(v, k);
  std::sort(idx.begin(), idx.end());
  return idx;
}

}  // namespace

PruningEvalResult evaluate_pruning(const model::ActivationGenerator& gen,
                                   const PruningEvalConfig& config) {
  const auto& profile = gen.profile();
  const std::size_t d = profile.channels;
  PruningEvalResult result;
  result.layers.resize(profile.layers);
  result.mean_cosine_fixed.assign(config.fixed_ratios.size(), 0.0);

  // One dynamic controller per token, walked down the layer stack; the
  // per-layer budget depends on the shallower layers' statistics, so the
  // outer loop is over tokens.
  std::vector<std::vector<std::size_t>> k_per_token(
      config.tokens, std::vector<std::size_t>(profile.layers, d));
  for (std::size_t tok = 0; tok < config.tokens; ++tok) {
    DynamicTopK controller(config.dynamic, d);
    controller.begin_token();
    for (std::size_t layer = 0; layer < profile.layers; ++layer) {
      const auto v = gen.activations(layer, tok);
      k_per_token[tok][layer] = controller.step(layer, v);
    }
  }

  double sum_ratio = 0.0;
  double sum_cos_dyn = 0.0;
  std::size_t samples = 0;

  Rng weight_rng(config.seed ^ 0xABCDEF0123456789ULL);
  for (std::size_t layer = 0; layer < profile.layers; ++layer) {
    LayerPruningStats& stats = result.layers[layer];
    stats.layer = layer;
    stats.cosine_fixed.assign(config.fixed_ratios.size(), 0.0);

    // Fresh per-layer weights; sequential so only one layer's weights
    // are resident at a time.
    Rng layer_rng = weight_rng.split();
    const auto weights = model::random_gated_mlp(d, config.d_ffn, layer_rng);

    for (std::size_t tok = 0; tok < config.tokens; ++tok) {
      const auto v = gen.activations(layer, tok);
      stats.kurtosis += kurtosis(v);

      const std::size_t k_used = k_per_token[tok][layer];
      stats.k_used = k_used;
      const double ratio = 1.0 - static_cast<double>(k_used) / static_cast<double>(d);
      stats.pruning_ratio += ratio;
      sum_ratio += ratio;

      const auto dense = model::ffn_reference(weights, v);
      const auto dyn_kept = kept_channels(v, k_used);
      const auto pruned_dyn = model::ffn_pruned(weights, v, dyn_kept);
      const double cos_dyn = cosine_similarity(dense, pruned_dyn);
      stats.cosine_dynamic += cos_dyn;
      sum_cos_dyn += cos_dyn;

      for (std::size_t f = 0; f < config.fixed_ratios.size(); ++f) {
        const std::size_t k_fixed = fixed_ratio_k(d, config.fixed_ratios[f]);
        const auto fixed_kept = kept_channels(v, k_fixed);
        const auto pruned_fixed = model::ffn_pruned(weights, v, fixed_kept);
        stats.cosine_fixed[f] += cosine_similarity(dense, pruned_fixed);
      }
      ++samples;
    }

    const auto tokens_d = static_cast<double>(config.tokens);
    stats.kurtosis /= tokens_d;
    stats.pruning_ratio /= tokens_d;
    stats.cosine_dynamic /= tokens_d;
    for (double& c : stats.cosine_fixed) c /= tokens_d;
    for (std::size_t f = 0; f < config.fixed_ratios.size(); ++f) {
      result.mean_cosine_fixed[f] += stats.cosine_fixed[f];
    }
  }

  result.mean_pruning_ratio = sum_ratio / static_cast<double>(samples);
  result.mean_cosine_dynamic = sum_cos_dyn / static_cast<double>(samples);
  for (double& c : result.mean_cosine_fixed) {
    c /= static_cast<double>(profile.layers);
  }
  return result;
}

}  // namespace edgemm::pruning
